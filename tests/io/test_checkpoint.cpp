// Checkpoint codec + A/B store tests (DESIGN.md §5.12): field-exact round
// trips, hostile-byte rejection (every single-byte flip and every truncation
// surfaces as a typed SnapshotError), and the crash-fallback guarantee of the
// CheckpointStore slot pair.

#include "io/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace clr::io {
namespace {

namespace fs = std::filesystem;

// --- Fixtures ----------------------------------------------------------------

dse::DesignDb make_db(std::size_t points, std::uint64_t salt) {
  dse::DesignDb db;
  for (std::size_t i = 0; i < points; ++i) {
    dse::DesignPoint p;
    p.energy = 10.0 + 0.5 * static_cast<double>(i + salt);
    p.makespan = 90.0 - 0.25 * static_cast<double>(i);
    p.func_rel = 0.99 - 1e-3 * static_cast<double>(i);
    p.extra = (i + salt) % 2 == 1;
    p.config.tasks.resize(1 + (i + salt) % 3);
    for (std::size_t t = 0; t < p.config.tasks.size(); ++t) {
      auto& a = p.config.tasks[t];
      a.pe = static_cast<plat::PeId>((i + t) % 3);
      a.impl_index = static_cast<std::uint32_t>(t % 2);
      a.clr_index = static_cast<std::uint32_t>((i + 5 * t) % 7);
      a.priority = static_cast<std::int32_t>(t) - 1;
    }
    db.add(std::move(p));
  }
  return db;
}

moea::GaState make_ga_state() {
  moea::GaState ga;
  ga.generations_done = 17;
  ga.rng_state = "12345 67890 42";
  for (int i = 0; i < 4; ++i) {
    moea::Individual ind;
    ind.genes = {i, 7 - i, i * i};
    ind.eval.objectives = {1.5 * i, 9.0 - i};
    ind.eval.violation = i == 3 ? 0.25 : 0.0;
    ind.fitness = 30.0 - i;
    ind.rank = i % 2;
    ind.crowding = 0.125 * i;
    ga.population.push_back(ind);
    if (i < 2) ga.archive.push_back(ind);
  }
  return ga;
}

ExploreCheckpoint make_explore(std::uint32_t stage = 1) {
  ExploreCheckpoint c;
  c.sequence = 5;
  c.param_hash = 0xABCDEF0123456789ULL;
  c.stage = stage;
  c.spec_max_makespan = 123.5;
  c.spec_min_func_rel = 0.875;
  if (stage == 0) {
    c.ref = {1.0, 2.5, -3.0};
    c.scale = {0.5, 0.25, 1.0};
  }
  c.ga = make_ga_state();
  c.red_seed_pos = stage == 1 ? 2 : 0;
  if (stage == 1) {
    c.based = make_db(3, 1);
    c.red = make_db(2, 9);
  }
  return c;
}

rt::RuntimeStats make_stats(std::size_t i) {
  rt::RuntimeStats s;
  s.total_cycles = 1000.0 + i;
  s.num_events = 10 + i;
  s.num_reconfigs = 3 + i;
  s.num_infeasible_events = i % 2;
  s.avg_energy = 55.5 + 0.1 * i;
  s.total_reconfig_cost = 12.0 + i;
  s.avg_reconfig_cost = 4.0;
  s.max_drc = 9.75;
  s.qos_violation_time = 1.5 * i;
  s.num_transient_faults = 2 * i;
  s.num_recovered_transients = i;
  s.num_unrecovered_failures = i / 2;
  s.num_permanent_faults = i % 3;
  s.num_evacuations = i % 2;
  s.num_safe_mode_entries = i % 4;
  s.downtime = 0.5 * i;
  s.availability = 1.0 - 1e-4 * i;
  s.mttr = 0.25 * i;
  return s;
}

RunnerCheckpoint make_runner() {
  RunnerCheckpoint c;
  c.sequence = 2;
  c.grid_hash = 0x1122334455667788ULL;
  c.replications = 3;
  c.done = {1, 0, 1, 1, 0, 0};
  for (std::size_t i = 0; i < c.done.size(); ++i) c.runs.push_back(make_stats(i));
  return c;
}

void expect_db_equal(const dse::DesignDb& a, const dse::DesignDb& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.point(i).config, b.point(i).config) << "point " << i;
    EXPECT_DOUBLE_EQ(a.point(i).energy, b.point(i).energy) << "point " << i;
    EXPECT_DOUBLE_EQ(a.point(i).makespan, b.point(i).makespan) << "point " << i;
    EXPECT_DOUBLE_EQ(a.point(i).func_rel, b.point(i).func_rel) << "point " << i;
    EXPECT_EQ(a.point(i).extra, b.point(i).extra) << "point " << i;
  }
}

void expect_ga_equal(const moea::GaState& a, const moea::GaState& b) {
  EXPECT_EQ(a.generations_done, b.generations_done);
  EXPECT_EQ(a.rng_state, b.rng_state);
  ASSERT_EQ(a.population.size(), b.population.size());
  ASSERT_EQ(a.archive.size(), b.archive.size());
  auto same = [](const moea::Individual& x, const moea::Individual& y) {
    EXPECT_EQ(x.genes, y.genes);
    EXPECT_EQ(x.eval.objectives, y.eval.objectives);
    EXPECT_DOUBLE_EQ(x.eval.violation, y.eval.violation);
    EXPECT_DOUBLE_EQ(x.fitness, y.fitness);
    EXPECT_EQ(x.rank, y.rank);
    EXPECT_DOUBLE_EQ(x.crowding, y.crowding);
  };
  for (std::size_t i = 0; i < a.population.size(); ++i) same(a.population[i], b.population[i]);
  for (std::size_t i = 0; i < a.archive.size(); ++i) same(a.archive[i], b.archive[i]);
}

void expect_stats_equal(const rt::RuntimeStats& a, const rt::RuntimeStats& b) {
  EXPECT_DOUBLE_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.num_events, b.num_events);
  EXPECT_EQ(a.num_reconfigs, b.num_reconfigs);
  EXPECT_EQ(a.num_infeasible_events, b.num_infeasible_events);
  EXPECT_DOUBLE_EQ(a.avg_energy, b.avg_energy);
  EXPECT_DOUBLE_EQ(a.total_reconfig_cost, b.total_reconfig_cost);
  EXPECT_DOUBLE_EQ(a.avg_reconfig_cost, b.avg_reconfig_cost);
  EXPECT_DOUBLE_EQ(a.max_drc, b.max_drc);
  EXPECT_DOUBLE_EQ(a.qos_violation_time, b.qos_violation_time);
  EXPECT_EQ(a.num_transient_faults, b.num_transient_faults);
  EXPECT_EQ(a.num_recovered_transients, b.num_recovered_transients);
  EXPECT_EQ(a.num_unrecovered_failures, b.num_unrecovered_failures);
  EXPECT_EQ(a.num_permanent_faults, b.num_permanent_faults);
  EXPECT_EQ(a.num_evacuations, b.num_evacuations);
  EXPECT_EQ(a.num_safe_mode_entries, b.num_safe_mode_entries);
  EXPECT_DOUBLE_EQ(a.downtime, b.downtime);
  EXPECT_DOUBLE_EQ(a.availability, b.availability);
  EXPECT_DOUBLE_EQ(a.mttr, b.mttr);
  EXPECT_TRUE(b.trace.empty()) << "traces must not survive the checkpoint";
}

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("clr_ckpt_" + std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

// --- Round trips -------------------------------------------------------------

TEST(CheckpointCodec, ExploreRedStageRoundTripsFieldExactly) {
  const ExploreCheckpoint c = make_explore(1);
  const std::string bytes = serialize_explore_checkpoint(c);
  const Snapshot snap = Snapshot::from_bytes(std::string(bytes));
  EXPECT_EQ(snap.view().version(), kSnapshotVersion);
  ASSERT_TRUE(snap.view().has_checkpoint());
  EXPECT_EQ(snap.view().checkpoint_section_kind(),
            static_cast<std::uint32_t>(SnapshotSection::ExploreState));

  const ExploreCheckpoint d = decode_explore_checkpoint(snap.view());
  EXPECT_EQ(d.sequence, c.sequence);
  EXPECT_EQ(d.param_hash, c.param_hash);
  EXPECT_EQ(d.stage, c.stage);
  EXPECT_DOUBLE_EQ(d.spec_max_makespan, c.spec_max_makespan);
  EXPECT_DOUBLE_EQ(d.spec_min_func_rel, c.spec_min_func_rel);
  EXPECT_EQ(d.ref, c.ref);
  EXPECT_EQ(d.scale, c.scale);
  expect_ga_equal(d.ga, c.ga);
  EXPECT_EQ(d.red_seed_pos, c.red_seed_pos);
  expect_db_equal(d.based, c.based);
  expect_db_equal(d.red, c.red);
}

TEST(CheckpointCodec, ExploreBaseStageRoundTripsFieldExactly) {
  const ExploreCheckpoint c = make_explore(0);
  const ExploreCheckpoint d =
      decode_explore_checkpoint(Snapshot::from_bytes(serialize_explore_checkpoint(c)).view());
  EXPECT_EQ(d.stage, 0u);
  EXPECT_EQ(d.ref, c.ref);
  EXPECT_EQ(d.scale, c.scale);
  expect_ga_equal(d.ga, c.ga);
  EXPECT_EQ(d.based.size(), 0u);
  EXPECT_EQ(d.red.size(), 0u);
}

TEST(CheckpointCodec, RunnerRoundTripsFieldExactly) {
  RunnerCheckpoint c = make_runner();
  c.runs[0].trace.resize(3);  // the encoder must strip traces
  const Snapshot snap = Snapshot::from_bytes(serialize_runner_checkpoint(c));
  ASSERT_TRUE(snap.view().has_checkpoint());
  EXPECT_EQ(snap.view().checkpoint_section_kind(),
            static_cast<std::uint32_t>(SnapshotSection::RunnerState));

  const RunnerCheckpoint d = decode_runner_checkpoint(snap.view());
  EXPECT_EQ(d.sequence, c.sequence);
  EXPECT_EQ(d.grid_hash, c.grid_hash);
  EXPECT_EQ(d.replications, c.replications);
  EXPECT_EQ(d.done, c.done);
  ASSERT_EQ(d.runs.size(), c.runs.size());
  for (std::size_t i = 0; i < d.runs.size(); ++i) expect_stats_equal(c.runs[i], d.runs[i]);
}

TEST(CheckpointCodec, SequencePeeksWithoutFullDecode) {
  EXPECT_EQ(checkpoint_sequence(
                Snapshot::from_bytes(serialize_explore_checkpoint(make_explore())).view()),
            5u);
  EXPECT_EQ(
      checkpoint_sequence(Snapshot::from_bytes(serialize_runner_checkpoint(make_runner())).view()),
      2u);
}

// --- Validation --------------------------------------------------------------

TEST(CheckpointCodec, KindMismatchIsRejected) {
  const Snapshot explore = Snapshot::from_bytes(serialize_explore_checkpoint(make_explore()));
  const Snapshot runner = Snapshot::from_bytes(serialize_runner_checkpoint(make_runner()));
  EXPECT_THROW(decode_runner_checkpoint(explore.view()), SnapshotError);
  EXPECT_THROW(decode_explore_checkpoint(runner.view()), SnapshotError);
}

TEST(CheckpointCodec, DesignDatabaseIsNotACheckpoint) {
  // A plain design database has no checkpoint section; the decoders and the
  // sequence peek must refuse it rather than misread point data.
  const rel::ClrSpace space(rel::ClrGranularity::Full);
  const Snapshot snap = Snapshot::from_bytes(serialize_snapshot(make_db(2, 0), space));
  EXPECT_FALSE(snap.view().has_checkpoint());
  EXPECT_THROW(decode_explore_checkpoint(snap.view()), SnapshotError);
  EXPECT_THROW(checkpoint_sequence(snap.view()), SnapshotError);
}

TEST(CheckpointCodec, CheckpointContainerRefusesMaterialize) {
  const Snapshot snap = Snapshot::from_bytes(serialize_explore_checkpoint(make_explore()));
  EXPECT_THROW(materialize(snap.view()), SnapshotError);
}

TEST(CheckpointCodec, InvalidStageIsRejected) {
  ExploreCheckpoint c = make_explore(0);
  c.stage = 2;
  const std::string bytes = serialize_explore_checkpoint(c);
  try {
    decode_explore_checkpoint(Snapshot::from_bytes(std::string(bytes)).view());
    FAIL() << "stage 2 accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::BadValue);
  }
}

TEST(CheckpointCodec, InvalidDoneFlagIsRejected) {
  // The encoder normalizes flags to 0/1, so plant the hostile value in the
  // raw section bytes and rebuild the container around it. Flags start after
  // the four u64 preamble/count fields.
  const Snapshot good = Snapshot::from_bytes(serialize_runner_checkpoint(make_runner()));
  const auto payload = good.view().checkpoint_payload();
  std::string corrupted(payload.begin(), payload.end());
  corrupted[4 * sizeof(std::uint64_t) + 1] = 2;
  detail::RawSection section;
  section.kind = good.view().checkpoint_section_kind();
  section.bytes = std::move(corrupted);
  const std::string rebuilt =
      detail::assemble_snapshot_container(kSnapshotVersion, {std::move(section)});
  try {
    decode_runner_checkpoint(Snapshot::from_bytes(std::string(rebuilt)).view());
    FAIL() << "done flag 2 accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::BadValue);
  }
}

TEST(CheckpointCodec, MismatchedVectorSizesAreRejectedAtEncodeTime) {
  ExploreCheckpoint c = make_explore(0);
  c.scale.pop_back();
  EXPECT_THROW(serialize_explore_checkpoint(c), SnapshotError);
  RunnerCheckpoint r = make_runner();
  r.runs.pop_back();
  EXPECT_THROW(serialize_runner_checkpoint(r), SnapshotError);
}

// --- Hostile bytes -----------------------------------------------------------

TEST(CheckpointCodec, EveryTruncationSurfacesAsTypedError) {
  for (const std::string& bytes : {serialize_explore_checkpoint(make_explore()),
                                   serialize_runner_checkpoint(make_runner())}) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      try {
        const Snapshot snap = Snapshot::from_bytes(bytes.substr(0, len));
        // Container may validate if the cut lands beyond the checksummed
        // region — then the payload decode must catch the short read.
        if (snap.view().checkpoint_section_kind() ==
            static_cast<std::uint32_t>(SnapshotSection::ExploreState)) {
          (void)decode_explore_checkpoint(snap.view());
        } else {
          (void)decode_runner_checkpoint(snap.view());
        }
        FAIL() << "truncation to " << len << " bytes accepted";
      } catch (const SnapshotError&) {
        // expected: typed error, never a crash or silent success
      }
    }
  }
}

TEST(CheckpointCodec, EverySingleByteFlipSurfacesAsTypedError) {
  const std::string good = serialize_explore_checkpoint(make_explore());
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x5A);
    try {
      const Snapshot snap = Snapshot::from_bytes(std::move(bad));
      (void)decode_explore_checkpoint(snap.view());
      FAIL() << "flip at byte " << i << " accepted";
    } catch (const SnapshotError&) {
      // expected
    }
  }
}

TEST(CheckpointCodec, PayloadFlipWithFixedChecksumNeverCrashes) {
  // Defeat the container checksum on purpose: flip one payload byte, then
  // recompute the stored FNV-1a over the checksummed region. The bounded
  // decoder must still either succeed or throw a typed error — never read
  // out of bounds (the ASan/UBSan CI leg gives this test its teeth).
  const std::string good = serialize_runner_checkpoint(make_runner());
  // Header layout: magic[8] version u32 checksum-lo u32 checksum-hi? — the
  // checksum field offset and coverage are container internals, so instead
  // of patching it we rebuild the container around the corrupted section.
  const Snapshot snap = Snapshot::from_bytes(std::string(good));
  const auto payload = snap.view().checkpoint_payload();
  for (std::size_t i = 0; i < payload.size(); ++i) {
    std::string corrupted(payload.begin(), payload.end());
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0xFF);
    detail::RawSection section;
    section.kind = snap.view().checkpoint_section_kind();
    section.bytes = std::move(corrupted);
    const std::string rebuilt =
        detail::assemble_snapshot_container(kSnapshotVersion, {std::move(section)});
    try {
      (void)decode_runner_checkpoint(Snapshot::from_bytes(std::string(rebuilt)).view());
    } catch (const SnapshotError&) {
      // fine — the flip hit a validated field
    }
  }
}

// --- CheckpointStore ---------------------------------------------------------

TEST_F(TempDir, StoreAlternatesSlotsAndKeepsSequenceMonotone) {
  CheckpointStore store(path("run.clrdb"));
  EXPECT_EQ(store.load_newest(), std::nullopt);
  EXPECT_EQ(store.next_sequence(), 1u);

  ExploreCheckpoint c = make_explore();
  c.sequence = 1;
  store.save(serialize_explore_checkpoint(c));
  EXPECT_TRUE(fs::exists(store.slot_a()));
  EXPECT_FALSE(fs::exists(store.slot_b()));
  EXPECT_EQ(store.next_sequence(), 2u);

  c.sequence = 2;
  store.save(serialize_explore_checkpoint(c));
  EXPECT_TRUE(fs::exists(store.slot_b()));

  c.sequence = 3;
  store.save(serialize_explore_checkpoint(c));

  // A fresh store (new process) must find the newest.
  CheckpointStore reopened(path("run.clrdb"));
  auto newest = reopened.load_newest();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(checkpoint_sequence(newest->view()), 3u);
  EXPECT_EQ(reopened.next_sequence(), 4u);
}

TEST_F(TempDir, StoreRejectsWrongSequence) {
  CheckpointStore store(path("run.clrdb"));
  ExploreCheckpoint c = make_explore();
  c.sequence = 7;  // store expects 1
  EXPECT_THROW(store.save(serialize_explore_checkpoint(c)), SnapshotError);
  EXPECT_FALSE(fs::exists(store.slot_a()));
  EXPECT_FALSE(fs::exists(store.slot_b()));
}

TEST_F(TempDir, CorruptNewestSlotFallsBackToSibling) {
  CheckpointStore store(path("run.clrdb"));
  ExploreCheckpoint c = make_explore();
  c.sequence = 1;
  store.save(serialize_explore_checkpoint(c));
  c.sequence = 2;
  store.save(serialize_explore_checkpoint(c));  // newest now in slot B

  // Simulate a torn write: truncate the newest slot mid-file.
  std::string torn = read_file(store.slot_b());
  torn.resize(torn.size() / 2);
  {
    std::ofstream out(store.slot_b(), std::ios::binary | std::ios::trunc);
    out.write(torn.data(), static_cast<std::streamsize>(torn.size()));
  }

  CheckpointStore recovered(path("run.clrdb"));
  auto newest = recovered.load_newest();
  ASSERT_TRUE(newest.has_value()) << "sibling slot must still load";
  EXPECT_EQ(checkpoint_sequence(newest->view()), 1u);
  // The next save must go into the corrupt slot, preserving the good one.
  EXPECT_EQ(recovered.next_sequence(), 2u);
  c.sequence = 2;
  recovered.save(serialize_explore_checkpoint(c));
  CheckpointStore verify(path("run.clrdb"));
  auto latest = verify.load_newest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(checkpoint_sequence(latest->view()), 2u);
}

TEST_F(TempDir, BothSlotsCorruptMeansFreshStart) {
  CheckpointStore store(path("run.clrdb"));
  ExploreCheckpoint c = make_explore();
  c.sequence = 1;
  store.save(serialize_explore_checkpoint(c));
  {
    std::ofstream out(store.slot_a(), std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  CheckpointStore reopened(path("run.clrdb"));
  EXPECT_EQ(reopened.load_newest(), std::nullopt);
  EXPECT_EQ(reopened.next_sequence(), 1u);
}

TEST_F(TempDir, SaveValidatesBytesBeforeTouchingDisk) {
  CheckpointStore store(path("run.clrdb"));
  EXPECT_THROW(store.save("not a checkpoint container"), SnapshotError);
  EXPECT_FALSE(fs::exists(store.slot_a()));
  EXPECT_FALSE(fs::exists(store.slot_b()));
}

// --- Durable writes ----------------------------------------------------------

TEST_F(TempDir, DurableWriteFailureLeavesGoodFileUntouchedAndNoTmp) {
  // Force the tmp-file open to fail (EISDIR: a directory squats on the tmp
  // path). The existing good file must survive byte-identical and the
  // failure must not leave stray tmp litter behind.
  const std::string target = path("snap.clrdb");
  write_file_durable(target, "good bytes");
  ASSERT_EQ(read_file(target), "good bytes");

  fs::create_directories(target + ".tmp");
  try {
    write_file_durable(target, "replacement");
    FAIL() << "write through a squatting directory succeeded";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::Io);
  }
  EXPECT_EQ(read_file(target), "good bytes");
  fs::remove_all(target + ".tmp");

  // And after clearing the obstruction the same path works again.
  write_file_durable(target, "replacement");
  EXPECT_EQ(read_file(target), "replacement");
  EXPECT_FALSE(fs::exists(target + ".tmp")) << "tmp file must not outlive the rename";
}

// --- Cross-version -----------------------------------------------------------

TEST(CheckpointCodec, Version1DatabasesStillLoad) {
  // Checkpoints forced the container to v2; pre-existing v1 design databases
  // must keep loading unchanged.
  const rel::ClrSpace space(rel::ClrGranularity::Full);
  const dse::DesignDb db = make_db(4, 3);
  const std::string v1 = serialize_snapshot_for_version(1, db, space, nullptr);
  const Snapshot snap = Snapshot::from_bytes(std::string(v1));
  EXPECT_EQ(snap.view().version(), 1u);
  EXPECT_FALSE(snap.view().has_checkpoint());
  const LoadedSnapshot loaded = materialize(snap.view());
  expect_db_equal(loaded.db, db);
}

}  // namespace
}  // namespace clr::io
