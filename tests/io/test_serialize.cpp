#include "io/serialize.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "experiments/app.hpp"
#include "experiments/flow.hpp"
#include "taskgraph/generator.hpp"

namespace clr::io {
namespace {

TEST(SerializePlatform, RoundTripsDefaultHmpsoc) {
  const auto hw = plat::make_default_hmpsoc();
  const auto restored = platform_from_json(Json::parse(to_json(hw).dump()));
  ASSERT_EQ(restored.num_pes(), hw.num_pes());
  ASSERT_EQ(restored.num_pe_types(), hw.num_pe_types());
  ASSERT_EQ(restored.num_prrs(), hw.num_prrs());
  for (std::size_t i = 0; i < hw.num_pe_types(); ++i) {
    const auto& a = hw.pe_type(static_cast<plat::PeTypeId>(i));
    const auto& b = restored.pe_type(static_cast<plat::PeTypeId>(i));
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_DOUBLE_EQ(a.perf_factor, b.perf_factor);
    EXPECT_DOUBLE_EQ(a.avf, b.avf);
    EXPECT_DOUBLE_EQ(a.beta_aging, b.beta_aging);
  }
  for (std::size_t i = 0; i < hw.num_pes(); ++i) {
    const auto id = static_cast<plat::PeId>(i);
    EXPECT_EQ(hw.pe(id).type, restored.pe(id).type);
    EXPECT_EQ(hw.pe(id).prr, restored.pe(id).prr);
  }
  EXPECT_DOUBLE_EQ(hw.interconnect().binary_bandwidth,
                   restored.interconnect().binary_bandwidth);
}

TEST(SerializePlatform, RoundTripsMeshTopology) {
  auto hw = plat::make_default_hmpsoc();
  auto ic = hw.interconnect();
  ic.topology = plat::Topology::Mesh2D;
  ic.mesh_columns = 3;
  hw.set_interconnect(ic);
  const auto restored = platform_from_json(Json::parse(to_json(hw).dump()));
  EXPECT_EQ(restored.interconnect().topology, plat::Topology::Mesh2D);
  EXPECT_EQ(restored.interconnect().mesh_columns, 3u);
  EXPECT_EQ(restored.hop_count(0, 5), hw.hop_count(0, 5));
}

TEST(SerializeTaskGraph, RoundTripsGeneratedGraph) {
  tg::GeneratorParams p;
  p.num_tasks = 23;
  util::Rng rng(5);
  const auto g = tg::TgffGenerator(p).generate(rng);
  const auto restored = task_graph_from_json(Json::parse(to_json(g).dump()));
  ASSERT_EQ(restored.num_tasks(), g.num_tasks());
  ASSERT_EQ(restored.num_edges(), g.num_edges());
  EXPECT_DOUBLE_EQ(restored.period(), g.period());
  for (tg::TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(restored.task(t).type, g.task(t).type);
    EXPECT_DOUBLE_EQ(restored.task(t).criticality, g.task(t).criticality);
  }
  for (tg::EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(restored.edge(e).src, g.edge(e).src);
    EXPECT_EQ(restored.edge(e).dst, g.edge(e).dst);
    EXPECT_DOUBLE_EQ(restored.edge(e).comm_time, g.edge(e).comm_time);
    EXPECT_EQ(restored.edge(e).data_bytes, g.edge(e).data_bytes);
  }
}

TEST(SerializeClrSpace, RoundTripsFullSpace) {
  const rel::ClrSpace space(rel::ClrGranularity::Full);
  const auto restored = clr_space_from_json(Json::parse(to_json(space).dump()));
  ASSERT_EQ(restored.size(), space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(restored.config(i), space.config(i)) << "config " << i;
  }
}

TEST(SerializeConfiguration, RoundTrips) {
  sched::Configuration cfg;
  cfg.tasks = {{3, 1, 7, -2}, {0, 0, 0, 5}};
  const auto restored = configuration_from_json(Json::parse(to_json(cfg).dump()));
  EXPECT_EQ(restored, cfg);
}

TEST(SerializeConfiguration, RejectsRaggedColumns) {
  const auto j = Json::parse(R"({"pe":[1],"impl":[1,2],"clr":[0],"priority":[0]})");
  EXPECT_THROW(configuration_from_json(j), JsonError);
}

TEST(SerializeDesignDb, RoundTripsAFlowResult) {
  const auto app = exp::make_synthetic_app(10, 0x10ad);
  exp::FlowParams params;
  params.dse.base_ga.population = 32;
  params.dse.base_ga.generations = 20;
  params.dse.red_ga.population = 16;
  params.dse.red_ga.generations = 8;
  params.dse.max_red_seeds = 4;
  util::Rng rng(1);
  const auto flow = exp::run_design_flow(*app, params, rng);

  const auto json = to_json(flow.red, app->clr_space());
  const auto loaded = design_db_from_json(Json::parse(json.dump(2)));
  ASSERT_EQ(loaded.db.size(), flow.red.size());
  EXPECT_EQ(loaded.space.size(), app->clr_space().size());
  for (std::size_t i = 0; i < flow.red.size(); ++i) {
    EXPECT_EQ(loaded.db.point(i).config, flow.red.point(i).config);
    EXPECT_DOUBLE_EQ(loaded.db.point(i).energy, flow.red.point(i).energy);
    EXPECT_DOUBLE_EQ(loaded.db.point(i).makespan, flow.red.point(i).makespan);
    EXPECT_DOUBLE_EQ(loaded.db.point(i).func_rel, flow.red.point(i).func_rel);
    EXPECT_EQ(loaded.db.point(i).extra, flow.red.point(i).extra);
  }
}

TEST(SerializeDesignDb, FileRoundTrip) {
  const auto app = exp::make_synthetic_app(8, 0x10ae);
  dse::DesignDb db;
  dse::DesignPoint p;
  p.config.tasks.resize(8);
  p.energy = 12.5;
  p.makespan = 99.0;
  p.func_rel = 0.987;
  db.add(p);
  const auto path = (std::filesystem::temp_directory_path() / "clr_db_test.json").string();
  save_design_db(path, db, app->clr_space());
  const auto loaded = load_design_db(path);
  EXPECT_EQ(loaded.db.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.db.point(0).energy, 12.5);
  std::filesystem::remove(path);
}

TEST(SerializeDesignDb, LoadedDbIsUsableByTheRuntime) {
  const auto app = exp::make_synthetic_app(8, 0x10af);
  exp::FlowParams params;
  params.dse.base_ga.population = 24;
  params.dse.base_ga.generations = 12;
  params.dse.red_ga.population = 12;
  params.dse.red_ga.generations = 6;
  params.dse.max_red_seeds = 2;
  util::Rng rng(2);
  const auto flow = exp::run_design_flow(*app, params, rng);
  const auto loaded = design_db_from_json(Json::parse(to_json(flow.red, app->clr_space()).dump()));

  exp::RuntimeEvalParams rt_params;
  rt_params.sim.total_cycles = 1e4;
  const auto stats = exp::evaluate_policy(*app, loaded.db, exp::qos_ranges(flow), rt_params, 3);
  EXPECT_GT(stats.num_events, 0u);
}

TEST(SerializeErrors, VersionIsChecked) {
  EXPECT_THROW(platform_from_json(Json::parse(R"({"pe_types":[]})")), JsonError);
  EXPECT_THROW(task_graph_from_json(Json::parse(R"({"version": 999})")), JsonError);
  EXPECT_THROW(design_db_from_json(Json::parse(R"({"version": 0})")), JsonError);
}

}  // namespace
}  // namespace clr::io
