#include "io/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "experiments/app.hpp"
#include "experiments/flow.hpp"
#include "experiments/runner.hpp"
#include "io/serialize.hpp"

namespace clr::io {
namespace {

// --- Fixture ----------------------------------------------------------------

/// Small hand-built database: deterministic, instant, and irregular enough
/// (ragged assignment rows, negative priorities, extra flags) to exercise
/// every column of the format.
struct Fixture {
  rel::ClrSpace space{rel::ClrGranularity::Full};
  dse::DesignDb db;
  rt::DrcMatrix drc{0, {}};
};

Fixture make_fixture(std::size_t points = 5) {
  Fixture f;
  for (std::size_t i = 0; i < points; ++i) {
    dse::DesignPoint p;
    p.energy = 100.0 + 3.25 * static_cast<double>(i);
    p.makespan = 50.0 - 0.5 * static_cast<double>(i);
    p.func_rel = 0.999 - 1e-4 * static_cast<double>(i);
    p.extra = (i % 2) == 1;
    p.config.tasks.resize(2 + i % 3);
    for (std::size_t t = 0; t < p.config.tasks.size(); ++t) {
      auto& a = p.config.tasks[t];
      a.pe = static_cast<plat::PeId>((i + t) % 4);
      a.impl_index = static_cast<std::uint32_t>(t % 2);
      a.clr_index = static_cast<std::uint32_t>((7 * i + t) % f.space.size());
      a.priority = static_cast<std::int32_t>(t) - 1;
    }
    f.db.add(std::move(p));
  }
  std::vector<double> costs(points * points);
  for (std::size_t i = 0; i < costs.size(); ++i) costs[i] = 0.125 * static_cast<double>(i);
  f.drc = rt::DrcMatrix(points, std::move(costs));
  return f;
}

void expect_equal(const dse::DesignDb& a, const dse::DesignDb& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.point(i).config, b.point(i).config) << "point " << i;
    EXPECT_DOUBLE_EQ(a.point(i).energy, b.point(i).energy);
    EXPECT_DOUBLE_EQ(a.point(i).makespan, b.point(i).makespan);
    EXPECT_DOUBLE_EQ(a.point(i).func_rel, b.point(i).func_rel);
    EXPECT_EQ(a.point(i).extra, b.point(i).extra);
  }
}

/// Patch a little-endian scalar into a byte image.
template <typename T>
void patch(std::string& bytes, std::size_t offset, T value) {
  ASSERT_LE(offset + sizeof value, bytes.size());
  std::memcpy(bytes.data() + offset, &value, sizeof value);
}

SnapshotError::Kind kind_of(const std::string& bytes) {
  try {
    (void)Snapshot::from_bytes(std::string(bytes));
  } catch (const SnapshotError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected SnapshotError";
  return SnapshotError::Kind::Io;
}

// --- Round trips -------------------------------------------------------------

TEST(Snapshot, RoundTripsDbSpaceAndDrc) {
  const Fixture f = make_fixture();
  const Snapshot snap = Snapshot::from_bytes(serialize_snapshot(f.db, f.space, &f.drc));
  EXPECT_EQ(snap.view().version(), kSnapshotVersion);
  EXPECT_EQ(snap.view().num_points(), f.db.size());
  const LoadedSnapshot loaded = materialize(snap.view());
  expect_equal(loaded.db, f.db);
  ASSERT_EQ(loaded.space.size(), f.space.size());
  for (std::size_t i = 0; i < f.space.size(); ++i) {
    EXPECT_EQ(loaded.space.config(i), f.space.config(i)) << "config " << i;
  }
  ASSERT_TRUE(loaded.drc.has_value());
  ASSERT_EQ(loaded.drc->size(), f.db.size());
  for (std::size_t i = 0; i < f.db.size(); ++i) {
    for (std::size_t j = 0; j < f.db.size(); ++j) {
      EXPECT_DOUBLE_EQ(loaded.drc->drc(i, j), f.drc.drc(i, j));
    }
  }
}

TEST(Snapshot, RoundTripsWithoutDrcSection) {
  const Fixture f = make_fixture();
  const Snapshot snap = Snapshot::from_bytes(serialize_snapshot(f.db, f.space));
  EXPECT_FALSE(snap.view().has_drc());
  const LoadedSnapshot loaded = materialize(snap.view());
  expect_equal(loaded.db, f.db);
  EXPECT_FALSE(loaded.drc.has_value());
}

TEST(Snapshot, RoundTripsEmptyDatabase) {
  const rel::ClrSpace space(rel::ClrGranularity::Full);
  const dse::DesignDb empty;
  const LoadedSnapshot loaded =
      materialize(Snapshot::from_bytes(serialize_snapshot(empty, space)).view());
  EXPECT_EQ(loaded.db.size(), 0u);
  EXPECT_EQ(loaded.space.size(), space.size());
}

TEST(Snapshot, FileRoundTripUsesTheZeroCopyMapping) {
  const Fixture f = make_fixture();
  const auto path = (std::filesystem::temp_directory_path() / "clr_snap_test.clrdb").string();
  save_snapshot(path, f.db, f.space, &f.drc);
  {
    const Snapshot snap = Snapshot::open(path);
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_TRUE(snap.is_mapped());
#endif
    expect_equal(materialize(snap.view()).db, f.db);
  }
  std::filesystem::remove(path);
}

TEST(Snapshot, LoadDesignDbDispatchesOnMagicNotExtension) {
  const Fixture f = make_fixture();
  // A snapshot stored under a .json name must still load through the binary
  // path (content sniffing, not extension trust).
  const auto path = (std::filesystem::temp_directory_path() / "clr_snap_test.json").string();
  save_snapshot(path, f.db, f.space);
  const LoadedDesignDb loaded = load_design_db(path);
  expect_equal(loaded.db, f.db);
  EXPECT_EQ(loaded.space.size(), f.space.size());
  std::filesystem::remove(path);
}

TEST(Snapshot, PathAndMagicHelpers) {
  EXPECT_TRUE(is_snapshot_path("out/db.clrdb"));
  EXPECT_FALSE(is_snapshot_path("out/db.json"));
  EXPECT_FALSE(is_snapshot_path("clrdb"));
  const Fixture f = make_fixture(1);
  EXPECT_TRUE(has_snapshot_magic(serialize_snapshot(f.db, f.space)));
  EXPECT_FALSE(has_snapshot_magic("{\"version\": 1}"));
  EXPECT_FALSE(has_snapshot_magic(""));
}

// --- Version gating ----------------------------------------------------------

TEST(Snapshot, WriterRejectsUnknownVersion) {
  const Fixture f = make_fixture(1);
  try {
    (void)serialize_snapshot_for_version(7, f.db, f.space, nullptr);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::BadVersion);
    EXPECT_NE(std::string(e.what()).find("7"), std::string::npos);
  }
}

TEST(Snapshot, ReaderRejectsVersionFromTheFutureWithFoundVsSupported) {
  const Fixture f = make_fixture(1);
  std::string bytes = serialize_snapshot(f.db, f.space);
  patch<std::uint32_t>(bytes, 8, kSnapshotVersion + 1);
  try {
    (void)Snapshot::from_bytes(std::move(bytes));
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::BadVersion);
    const std::string message = e.what();
    EXPECT_NE(message.find("version " + std::to_string(kSnapshotVersion + 1)),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("supports 1.." + std::to_string(kSnapshotVersion)),
              std::string::npos)
        << message;
  }
}

TEST(Snapshot, ReaderRejectsVersionZero) {
  const Fixture f = make_fixture(1);
  std::string bytes = serialize_snapshot(f.db, f.space);
  patch<std::uint32_t>(bytes, 8, 0);
  EXPECT_EQ(kind_of(bytes), SnapshotError::Kind::BadVersion);
}

// --- Hostile input ----------------------------------------------------------

TEST(SnapshotFuzz, RejectsNonSnapshotBytes) {
  EXPECT_EQ(kind_of(std::string{}), SnapshotError::Kind::Truncated);
  EXPECT_EQ(kind_of(std::string("\x89vers")), SnapshotError::Kind::Truncated);
  EXPECT_EQ(kind_of(std::string("{\"version\": 1, \"points\": []}")),
            SnapshotError::Kind::BadMagic);
  EXPECT_EQ(kind_of(std::string(4096, '\0')), SnapshotError::Kind::BadMagic);
}

TEST(SnapshotFuzz, TruncationAtEveryLengthThrows) {
  const Fixture f = make_fixture(3);
  const std::string good = serialize_snapshot(f.db, f.space, &f.drc);
  // Every proper prefix — which covers every section boundary — must fail
  // cleanly (and never read past the buffer; this suite runs under ASan).
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW((void)Snapshot::from_bytes(good.substr(0, len)), SnapshotError)
        << "prefix of " << len << " bytes accepted";
  }
}

TEST(SnapshotFuzz, TrailingGarbageThrows) {
  const Fixture f = make_fixture(2);
  std::string bytes = serialize_snapshot(f.db, f.space);
  bytes.append(16, '\xAB');
  EXPECT_EQ(kind_of(bytes), SnapshotError::Kind::Truncated);
}

TEST(SnapshotFuzz, EveryByteFlipThrows) {
  const Fixture f = make_fixture(3);
  const std::string good = serialize_snapshot(f.db, f.space, &f.drc);
  // Exhaustive single-byte corruption: every flip must surface as a typed
  // error — payload flips via the checksum, header/table flips structurally.
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bytes = good;
    bytes[i] = static_cast<char>(bytes[i] ^ 0xFF);
    EXPECT_THROW((void)Snapshot::from_bytes(std::move(bytes)), SnapshotError)
        << "flip at byte " << i << " accepted";
  }
}

TEST(SnapshotFuzz, PayloadFlipReportsChecksumMismatch) {
  const Fixture f = make_fixture(2);
  std::string bytes = serialize_snapshot(f.db, f.space);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  EXPECT_EQ(kind_of(bytes), SnapshotError::Kind::Checksum);
}

TEST(SnapshotFuzz, OversizedSectionLengthIsBounds) {
  const Fixture f = make_fixture(2);
  const std::string good = serialize_snapshot(f.db, f.space, &f.drc);
  const auto section_count = [&] {
    std::uint32_t n = 0;
    std::memcpy(&n, good.data() + 32, sizeof n);
    return n;
  }();
  ASSERT_EQ(section_count, 3u);
  // The table is outside the checksummed payload, so a hostile size edit is
  // reported precisely as a bounds error, per section.
  for (std::uint32_t s = 0; s < section_count; ++s) {
    std::string bytes = good;
    patch<std::uint64_t>(bytes, 40 + 24 * s + 16, std::uint64_t{1} << 60);
    EXPECT_EQ(kind_of(bytes), SnapshotError::Kind::Bounds) << "section " << s;
  }
}

TEST(SnapshotFuzz, SectionOffsetEscapingTheFileIsBounds) {
  const Fixture f = make_fixture(2);
  std::string bytes = serialize_snapshot(f.db, f.space);
  patch<std::uint64_t>(bytes, 40 + 8, bytes.size() + 8);  // section 0 offset
  EXPECT_EQ(kind_of(bytes), SnapshotError::Kind::Bounds);
}

TEST(SnapshotFuzz, MisalignedSectionOffsetIsBounds) {
  const Fixture f = make_fixture(2);
  std::string bytes = serialize_snapshot(f.db, f.space);
  std::uint64_t offset = 0;
  std::memcpy(&offset, bytes.data() + 40 + 8, sizeof offset);
  patch<std::uint64_t>(bytes, 40 + 8, offset + 4);
  EXPECT_EQ(kind_of(bytes), SnapshotError::Kind::Bounds);
}

TEST(SnapshotFuzz, NonzeroFlagsRejected) {
  const Fixture f = make_fixture(1);
  std::string bytes = serialize_snapshot(f.db, f.space);
  patch<std::uint32_t>(bytes, 12, 0x80000000u);
  EXPECT_EQ(kind_of(bytes), SnapshotError::Kind::BadValue);
}

TEST(SnapshotFuzz, UnknownSectionKindRejected) {
  const Fixture f = make_fixture(1);
  std::string bytes = serialize_snapshot(f.db, f.space);
  patch<std::uint32_t>(bytes, 40, 99);  // section 0 kind
  EXPECT_EQ(kind_of(bytes), SnapshotError::Kind::BadValue);
}

TEST(SnapshotFuzz, MissingRequiredSectionRejected) {
  const Fixture f = make_fixture(1);
  std::string bytes = serialize_snapshot(f.db, f.space);
  // Claim the ClrSpace section is a (valid, same-shape) duplicate check bait:
  // rewriting kind 1 -> 3 both drops a required section and leaves a DrcMatrix
  // with the wrong geometry; the required-section check must fire first.
  patch<std::uint32_t>(bytes, 40, 3);
  EXPECT_EQ(kind_of(bytes), SnapshotError::Kind::BadValue);
}

// --- MdpPolicy section (format version 4) ------------------------------------

/// Hand-built table sized to the fixture database: irregular values, every
/// policy entry exercised, no offline solve needed.
rt::MdpTable make_mdp_table(std::size_t points) {
  rt::MdpTable t;
  t.makespan_bins = 3;
  t.func_rel_bins = 2;
  t.num_points = points;
  t.gamma = 0.9375;
  t.p_rc = 0.4;
  t.ranges.makespan_min = 48.0;
  t.ranges.makespan_max = 50.0;
  t.ranges.func_rel_min = 0.9985;
  t.ranges.func_rel_max = 0.999;
  t.ranges.energy_min = 100.0;
  t.ranges.energy_max = 113.0;
  t.policy.resize(t.num_states());
  t.values.resize(t.num_states());
  for (std::size_t s = 0; s < t.num_states(); ++s) {
    t.policy[s] = static_cast<std::uint32_t>((s * 7 + 1) % points);
    t.values[s] = 0.25 * static_cast<double>(s) - 3.5;
  }
  return t;
}

TEST(SnapshotMdp, RoundTripsTheMdpPolicySection) {
  const Fixture f = make_fixture();
  const rt::MdpTable table = make_mdp_table(f.db.size());
  const Snapshot snap =
      Snapshot::from_bytes(serialize_snapshot(f.db, f.space, &f.drc, &table));
  ASSERT_TRUE(snap.view().has_mdp());
  const LoadedSnapshot loaded = materialize(snap.view());
  expect_equal(f.db, loaded.db);
  ASSERT_TRUE(loaded.mdp.has_value());
  // Defaulted operator==: every scalar, range bound, policy entry and value
  // compared bit-for-bit.
  EXPECT_EQ(*loaded.mdp, table);
}

TEST(SnapshotMdp, FilesWithoutTheSectionLoadWithNoTable) {
  const Fixture f = make_fixture();
  const LoadedSnapshot loaded =
      materialize(Snapshot::from_bytes(serialize_snapshot(f.db, f.space, &f.drc)).view());
  EXPECT_FALSE(loaded.mdp.has_value());
}

TEST(SnapshotMdp, OlderFormatVersionsStillLoadAndNeverCarryATable) {
  const Fixture f = make_fixture();
  for (const std::uint32_t version : {1u, 2u, 3u}) {
    const std::string bytes =
        serialize_snapshot_for_version(version, f.db, f.space, version >= 2 ? &f.drc : nullptr);
    const LoadedSnapshot loaded = materialize(Snapshot::from_bytes(std::string(bytes)).view());
    expect_equal(f.db, loaded.db);
    EXPECT_FALSE(loaded.mdp.has_value()) << "version " << version;
  }
}

TEST(SnapshotMdp, WriterRefusesTheSectionBelowVersionFour) {
  const Fixture f = make_fixture();
  const rt::MdpTable table = make_mdp_table(f.db.size());
  for (const std::uint32_t version : {1u, 2u, 3u}) {
    try {
      (void)serialize_snapshot_for_version(version, f.db, f.space, nullptr, &table);
      ADD_FAILURE() << "version " << version << " accepted an MdpPolicy section";
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.kind(), SnapshotError::Kind::BadVersion);
    }
  }
}

TEST(SnapshotMdp, WriterRefusesATableSizedForADifferentDatabase) {
  const Fixture f = make_fixture();
  const rt::MdpTable table = make_mdp_table(f.db.size() + 1);
  try {
    (void)serialize_snapshot(f.db, f.space, nullptr, &table);
    ADD_FAILURE() << "num_points mismatch accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::BadValue);
  }
}

TEST(SnapshotMdp, TruncationAtEveryLengthThrows) {
  const Fixture f = make_fixture(2);
  const rt::MdpTable table = make_mdp_table(2);
  const std::string good = serialize_snapshot(f.db, f.space, nullptr, &table);
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW((void)Snapshot::from_bytes(good.substr(0, len)), SnapshotError)
        << "prefix of " << len << " bytes accepted";
  }
}

TEST(SnapshotMdp, EveryByteFlipThrows) {
  const Fixture f = make_fixture(2);
  const rt::MdpTable table = make_mdp_table(2);
  const std::string good = serialize_snapshot(f.db, f.space, &f.drc, &table);
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bytes = good;
    bytes[i] = static_cast<char>(bytes[i] ^ 0xFF);
    EXPECT_THROW((void)Snapshot::from_bytes(std::move(bytes)), SnapshotError)
        << "flip at byte " << i << " accepted";
  }
}

TEST(SnapshotMdp, SectionCannotRideWithACheckpoint) {
  // Rewriting the MdpPolicy table entry (section index 3, last) to a
  // checkpoint kind produces a file mixing checkpoint and design-db sections;
  // the only-section shape rule (or the checkpoint payload decode) must
  // reject it no matter which fires first.
  const Fixture f = make_fixture(2);
  const rt::MdpTable table = make_mdp_table(2);
  const std::string good = serialize_snapshot(f.db, f.space, &f.drc, &table);
  for (const std::uint32_t checkpoint_kind : {5u, 6u, 7u}) {
    std::string bytes = good;
    patch<std::uint32_t>(bytes, 40 + 24 * 3, checkpoint_kind);
    EXPECT_THROW((void)Snapshot::from_bytes(std::move(bytes)), SnapshotError)
        << "kind " << checkpoint_kind;
  }
}

TEST(SnapshotMdp, FileRoundTripPreservesTheTable) {
  const Fixture f = make_fixture();
  const rt::MdpTable table = make_mdp_table(f.db.size());
  const auto path =
      (std::filesystem::temp_directory_path() / "clr_snapshot_mdp_test.clrdb").string();
  save_snapshot(path, f.db, f.space, &f.drc, &table);
  const LoadedSnapshot loaded = load_snapshot(path);
  ASSERT_TRUE(loaded.mdp.has_value());
  EXPECT_EQ(*loaded.mdp, table);
  std::filesystem::remove(path);
}

// --- End-to-end equivalence ---------------------------------------------------

TEST(SnapshotRunner, GridResultsBitIdenticalToJsonPathAtAnyJobCount) {
  const auto app = exp::make_synthetic_app(8, 0x51AB);
  exp::FlowParams params;
  params.dse.base_ga.population = 24;
  params.dse.base_ga.generations = 10;
  params.dse.red_ga.population = 12;
  params.dse.red_ga.generations = 5;
  params.dse.max_red_seeds = 2;
  util::Rng rng(1);
  const auto flow = exp::run_design_flow(*app, params, rng);

  recfg::ReconfigModel reconfig(app->platform(), app->impls());
  const rt::DrcMatrix drc(flow.red, reconfig);
  const std::string bytes = serialize_snapshot(flow.red, app->clr_space(), &drc);
  const Snapshot snap = Snapshot::from_bytes(std::string(bytes));
  const LoadedSnapshot from_snapshot = materialize(snap.view());
  ASSERT_TRUE(from_snapshot.drc.has_value());

  const LoadedDesignDb from_json =
      design_db_from_json(Json::parse(to_json(flow.red, app->clr_space()).dump(2)));

  const dse::MetricRanges box = exp::qos_ranges(flow);
  exp::RuntimeEvalParams eval;
  eval.kind = exp::PolicyKind::Ura;
  eval.sim.total_cycles = 2e4;

  std::vector<exp::ReplicatedStats> results;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    for (const bool use_snapshot : {true, false}) {
      exp::RunnerConfig config;
      config.replications = 3;
      config.jobs = jobs;
      exp::Runner runner(config);
      exp::RunnerCell cell;
      cell.app = app.get();
      cell.db = use_snapshot ? &from_snapshot.db : &from_json.db;
      if (use_snapshot) cell.drc = &*from_snapshot.drc;
      cell.ranges = box;
      cell.params = eval;
      cell.seed = 42;
      runner.add_cell(std::move(cell));
      results.push_back(runner.run().front().stats);
    }
  }
  const auto expect_same = [](const util::Summary& a, const util::Summary& b,
                              const char* field) {
    EXPECT_EQ(a.mean, b.mean) << field;
    EXPECT_EQ(a.stddev, b.stddev) << field;
    EXPECT_EQ(a.ci95, b.ci95) << field;
  };
  for (std::size_t i = 1; i < results.size(); ++i) {
    expect_same(results[0].num_events, results[i].num_events, "num_events");
    expect_same(results[0].num_reconfigs, results[i].num_reconfigs, "num_reconfigs");
    expect_same(results[0].num_infeasible_events, results[i].num_infeasible_events,
                "num_infeasible_events");
    expect_same(results[0].avg_energy, results[i].avg_energy, "avg_energy");
    expect_same(results[0].total_reconfig_cost, results[i].total_reconfig_cost,
                "total_reconfig_cost");
    expect_same(results[0].avg_reconfig_cost, results[i].avg_reconfig_cost,
                "avg_reconfig_cost");
    expect_same(results[0].max_drc, results[i].max_drc, "max_drc");
    expect_same(results[0].availability, results[i].availability, "availability");
  }
}

}  // namespace
}  // namespace clr::io
