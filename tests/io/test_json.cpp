#include "io/json.hpp"

#include <gtest/gtest.h>

namespace clr::io {
namespace {

TEST(Json, ScalarConstructionAndAccess) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(nullptr).is_null());
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_DOUBLE_EQ(Json(3.5).as_number(), 3.5);
  EXPECT_EQ(Json("hi").as_string(), "hi");
  EXPECT_EQ(Json(42).as_int(), 42);
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(Json(1.0).as_string(), JsonError);
  EXPECT_THROW(Json("x").as_number(), JsonError);
  EXPECT_THROW(Json(true).as_array(), JsonError);
  EXPECT_THROW(Json(1.5).as_int(), JsonError);  // non-integral
}

TEST(Json, ObjectLookup) {
  Json obj(JsonObject{{"a", Json(1)}, {"b", Json("two")}});
  EXPECT_EQ(obj.at("a").as_int(), 1);
  EXPECT_EQ(obj.at("b").as_string(), "two");
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW(obj.at("missing"), JsonError);
}

TEST(Json, DumpCompact) {
  Json v(JsonObject{{"n", Json(1)},
                    {"s", Json("x")},
                    {"a", Json(JsonArray{Json(true), Json(nullptr)})}});
  EXPECT_EQ(v.dump(), R"({"n":1,"s":"x","a":[true,null]})");
}

TEST(Json, DumpPreservesKeyOrder) {
  Json v(JsonObject{{"z", Json(1)}, {"a", Json(2)}});
  EXPECT_EQ(v.dump(), R"({"z":1,"a":2})");
}

TEST(Json, DumpPrettyIndents) {
  Json v(JsonObject{{"a", Json(JsonArray{Json(1)})}});
  EXPECT_EQ(v.dump(2), "{\n  \"a\": [\n    1\n  ]\n}");
}

TEST(Json, DumpEscapesStrings) {
  EXPECT_EQ(Json("a\"b\\c\n").dump(), R"("a\"b\\c\n")");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, DumpNumbersIntegralAndReal) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-1e3").as_number(), -1000.0);
  EXPECT_EQ(Json::parse(R"("hello")").as_string(), "hello");
}

TEST(Json, ParseNested) {
  const auto v = Json::parse(R"({"a": [1, {"b": "c"}, null], "d": true})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[1].at("b").as_string(), "c");
  EXPECT_TRUE(v.at("d").as_bool());
}

TEST(Json, ParseStringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");  // é in UTF-8
  EXPECT_EQ(Json::parse(R"("\t\/\\")").as_string(), "\t/\\");
}

TEST(Json, ParseWhitespaceTolerant) {
  const auto v = Json::parse("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);        // trailing junk
  EXPECT_THROW(Json::parse("01a"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("\"bad\\q\""), JsonError);
  EXPECT_THROW(Json::parse("1."), JsonError);
  EXPECT_THROW(Json::parse("1e"), JsonError);
}

TEST(Json, ErrorsCarryOffsets) {
  try {
    Json::parse("{\"a\": xyz}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_GE(e.offset(), 6u);
  }
}

TEST(Json, RoundTripIsStable) {
  const std::string doc =
      R"({"name":"test","values":[1,2.5,-3],"nested":{"flag":false,"none":null},"s":"q\"uote"})";
  const auto v = Json::parse(doc);
  const auto v2 = Json::parse(v.dump());
  EXPECT_EQ(v.dump(), v2.dump());
}

TEST(Json, LargeArrayRoundTrip) {
  JsonArray a;
  for (int i = 0; i < 1000; ++i) a.push_back(Json(i * 0.25));
  const Json v(std::move(a));
  const auto parsed = Json::parse(v.dump());
  ASSERT_EQ(parsed.as_array().size(), 1000u);
  EXPECT_DOUBLE_EQ(parsed.as_array()[999].as_number(), 999 * 0.25);
}

}  // namespace
}  // namespace clr::io
