#include "io/json.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <clocale>
#include <cstdint>
#include <limits>

namespace clr::io {
namespace {

TEST(Json, ScalarConstructionAndAccess) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(nullptr).is_null());
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_DOUBLE_EQ(Json(3.5).as_number(), 3.5);
  EXPECT_EQ(Json("hi").as_string(), "hi");
  EXPECT_EQ(Json(42).as_int(), 42);
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(Json(1.0).as_string(), JsonError);
  EXPECT_THROW(Json("x").as_number(), JsonError);
  EXPECT_THROW(Json(true).as_array(), JsonError);
  EXPECT_THROW(Json(1.5).as_int(), JsonError);  // non-integral
}

TEST(Json, ObjectLookup) {
  Json obj(JsonObject{{"a", Json(1)}, {"b", Json("two")}});
  EXPECT_EQ(obj.at("a").as_int(), 1);
  EXPECT_EQ(obj.at("b").as_string(), "two");
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW(obj.at("missing"), JsonError);
}

TEST(Json, DumpCompact) {
  Json v(JsonObject{{"n", Json(1)},
                    {"s", Json("x")},
                    {"a", Json(JsonArray{Json(true), Json(nullptr)})}});
  EXPECT_EQ(v.dump(), R"({"n":1,"s":"x","a":[true,null]})");
}

TEST(Json, DumpPreservesKeyOrder) {
  Json v(JsonObject{{"z", Json(1)}, {"a", Json(2)}});
  EXPECT_EQ(v.dump(), R"({"z":1,"a":2})");
}

TEST(Json, DumpPrettyIndents) {
  Json v(JsonObject{{"a", Json(JsonArray{Json(1)})}});
  EXPECT_EQ(v.dump(2), "{\n  \"a\": [\n    1\n  ]\n}");
}

TEST(Json, DumpEscapesStrings) {
  EXPECT_EQ(Json("a\"b\\c\n").dump(), R"("a\"b\\c\n")");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, DumpNumbersIntegralAndReal) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-1e3").as_number(), -1000.0);
  EXPECT_EQ(Json::parse(R"("hello")").as_string(), "hello");
}

TEST(Json, ParseNested) {
  const auto v = Json::parse(R"({"a": [1, {"b": "c"}, null], "d": true})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[1].at("b").as_string(), "c");
  EXPECT_TRUE(v.at("d").as_bool());
}

TEST(Json, ParseStringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");  // é in UTF-8
  EXPECT_EQ(Json::parse(R"("\t\/\\")").as_string(), "\t/\\");
}

TEST(Json, ParseWhitespaceTolerant) {
  const auto v = Json::parse("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);        // trailing junk
  EXPECT_THROW(Json::parse("01a"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("\"bad\\q\""), JsonError);
  EXPECT_THROW(Json::parse("1."), JsonError);
  EXPECT_THROW(Json::parse("1e"), JsonError);
}

TEST(Json, ErrorsCarryOffsets) {
  try {
    Json::parse("{\"a\": xyz}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_GE(e.offset(), 6u);
  }
}

TEST(Json, RoundTripIsStable) {
  const std::string doc =
      R"({"name":"test","values":[1,2.5,-3],"nested":{"flag":false,"none":null},"s":"q\"uote"})";
  const auto v = Json::parse(doc);
  const auto v2 = Json::parse(v.dump());
  EXPECT_EQ(v.dump(), v2.dump());
}

TEST(Json, LargeArrayRoundTrip) {
  JsonArray a;
  for (int i = 0; i < 1000; ++i) a.push_back(Json(i * 0.25));
  const Json v(std::move(a));
  const auto parsed = Json::parse(v.dump());
  ASSERT_EQ(parsed.as_array().size(), 1000u);
  EXPECT_DOUBLE_EQ(parsed.as_array()[999].as_number(), 999 * 0.25);
}


// --- Locale- and range-robust number I/O -----------------------------------
// Artifacts written on one host must load on any other: the writer and parser
// must ignore LC_NUMERIC entirely, and legally-printed extremes (denormals,
// DBL_MAX, signed zero) must survive a round trip.

/// Scoped LC_NUMERIC override; restores the previous locale on destruction.
class NumericLocaleGuard {
 public:
  explicit NumericLocaleGuard(const char* name)
      : previous_(std::setlocale(LC_NUMERIC, nullptr)), active_(std::setlocale(LC_NUMERIC, name)) {}
  ~NumericLocaleGuard() { std::setlocale(LC_NUMERIC, previous_.c_str()); }
  /// False when the requested locale is not installed on this host.
  bool active() const { return active_ != nullptr; }

 private:
  std::string previous_;
  const char* active_;
};

TEST(JsonLocale, RoundTripsUnderCommaDecimalLocale) {
  // Reference output under the classic locale.
  JsonObject report{{"name", Json("bench")}, {"mean_ms", Json(1.5)},
                    {"speedup", Json(12.345678901234567)}, {"iters", Json(1000.0)}};
  const std::string reference = Json(JsonObject(report)).dump(2);

  NumericLocaleGuard guard("de_DE.UTF-8");
  if (!guard.active()) GTEST_SKIP() << "de_DE.UTF-8 locale not installed";
  ASSERT_STREQ(std::localeconv()->decimal_point, ",") << "locale did not take effect";

  // Writing: byte-identical to the classic-locale output (no ',' decimals).
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json(JsonObject(report)).dump(2), reference);
  // Parsing: '.' stays the decimal separator regardless of LC_NUMERIC.
  EXPECT_DOUBLE_EQ(Json::parse("1.5").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(Json::parse(reference).at("speedup").as_number(), 12.345678901234567);
}

TEST(JsonNumbers, RoundTripsExtremeDoubles) {
  // 5e-324 (min denormal) in particular: std::stod throws out_of_range for it
  // on glibc, so a legally-serialized artifact failed to re-parse before the
  // from_chars migration.
  const double cases[] = {5e-324, std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::max(), -0.0};
  for (const double d : cases) {
    const std::string text = Json(d).dump();
    const double restored = Json::parse(text).as_number();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(restored), std::bit_cast<std::uint64_t>(d))
        << "value " << text << " did not survive the round trip";
  }
}

TEST(JsonNumbers, UnderflowParsesToSignedZeroOverflowThrows) {
  // Tokens below the denormal range underflow quietly (IEEE semantics)...
  EXPECT_EQ(std::bit_cast<std::uint64_t>(Json::parse("1e-999").as_number()),
            std::bit_cast<std::uint64_t>(0.0));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(Json::parse("-1e-999").as_number()),
            std::bit_cast<std::uint64_t>(-0.0));
  // ...while tokens above DBL_MAX are a real data-loss error.
  EXPECT_THROW(Json::parse("1e999"), JsonError);
  EXPECT_THROW(Json::parse("-1e999"), JsonError);
}

TEST(JsonNumbers, WriterFormatIsPinned) {
  // The writer contract predates the to_chars migration: %.0f for integral
  // values below 1e15, %.17g otherwise. Golden report files depend on it.
  EXPECT_EQ(Json(3.0).dump(), "3");
  EXPECT_EQ(Json(-123456789.0).dump(), "-123456789");
  EXPECT_EQ(Json(0.1).dump(), "0.10000000000000001");
  EXPECT_EQ(Json(1e15).dump(), "1000000000000000");  // %g: fixed below e+17
  EXPECT_EQ(Json(1e18).dump(), "1e+18");
  EXPECT_EQ(Json(12.345678901234567).dump(), "12.345678901234567");
}

}  // namespace
}  // namespace clr::io
