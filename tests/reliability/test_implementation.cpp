#include "reliability/implementation.hpp"

#include <gtest/gtest.h>

#include "platform/platform.hpp"
#include "taskgraph/generator.hpp"

namespace clr::rel {
namespace {

tg::TaskGraph make_graph(std::size_t n, std::uint64_t seed) {
  tg::GeneratorParams p;
  p.num_tasks = n;
  util::Rng rng(seed);
  return tg::TgffGenerator(p).generate(rng);
}

TEST(ImplementationSet, AddValidation) {
  ImplementationSet set;
  set.resize(2);
  Implementation good;
  EXPECT_NO_THROW(set.add(0, good));
  EXPECT_THROW(set.add(5, good), std::out_of_range);
  Implementation bad_time = good;
  bad_time.base_time = 0.0;
  EXPECT_THROW(set.add(0, bad_time), std::invalid_argument);
  Implementation bad_power = good;
  bad_power.base_power = -1.0;
  EXPECT_THROW(set.add(0, bad_power), std::invalid_argument);
}

TEST(ImplementationSet, CompatibleWithFilters) {
  ImplementationSet set;
  set.resize(1);
  Implementation a;
  a.pe_type = 0;
  Implementation b;
  b.pe_type = 1;
  Implementation c;
  c.pe_type = 0;
  set.add(0, a);
  set.add(0, b);
  set.add(0, c);
  EXPECT_EQ(set.compatible_with(0, 0), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(set.compatible_with(0, 1), (std::vector<std::size_t>{1}));
  EXPECT_TRUE(set.compatible_with(0, 7).empty());
}

class ImplGenSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ImplGenSweep, EveryTaskRunsOnEveryFixedPeType) {
  const auto graph = make_graph(GetParam(), 11);
  const auto hw = plat::make_default_hmpsoc();
  util::Rng rng(5);
  const auto set = generate_implementations(graph, hw, ImplGenParams{}, rng);
  ASSERT_EQ(set.num_tasks(), graph.num_tasks());
  for (tg::TaskId t = 0; t < graph.num_tasks(); ++t) {
    for (const auto& pt : hw.pe_types()) {
      if (pt.kind == plat::PeKind::Accelerator) continue;
      EXPECT_FALSE(set.compatible_with(t, pt.id).empty())
          << "task " << t << " lacks an implementation for PE type " << pt.name;
    }
  }
}

TEST_P(ImplGenSweep, SameTaskTypeSharesCostTables) {
  const auto graph = make_graph(GetParam(), 13);
  const auto hw = plat::make_default_hmpsoc();
  util::Rng rng(5);
  const auto set = generate_implementations(graph, hw, ImplGenParams{}, rng);
  // TGFF semantics: two tasks of the same type have identical implementation
  // characteristics per PE type.
  for (tg::TaskId a = 0; a < graph.num_tasks(); ++a) {
    for (tg::TaskId b = a + 1; b < graph.num_tasks(); ++b) {
      if (graph.task(a).type != graph.task(b).type) continue;
      ASSERT_EQ(set.for_task(a).size(), set.for_task(b).size());
      for (std::size_t i = 0; i < set.for_task(a).size(); ++i) {
        EXPECT_DOUBLE_EQ(set.for_task(a)[i].base_time, set.for_task(b)[i].base_time);
        EXPECT_DOUBLE_EQ(set.for_task(a)[i].base_power, set.for_task(b)[i].base_power);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ImplGenSweep, ::testing::Values(5, 10, 25, 50));

TEST(ImplGen, AcceleratorImplsAreFasterWhenPresent) {
  const auto graph = make_graph(40, 17);
  const auto hw = plat::make_default_hmpsoc();
  ImplGenParams p;
  p.accel_availability = 1.0;  // force accelerators for every task type
  util::Rng rng(5);
  const auto set = generate_implementations(graph, hw, p, rng);
  plat::PeTypeId accel_type = 0;
  for (const auto& t : hw.pe_types()) {
    if (t.kind == plat::PeKind::Accelerator) accel_type = t.id;
  }
  for (tg::TaskId t = 0; t < graph.num_tasks(); ++t) {
    const auto accel_impls = set.compatible_with(t, accel_type);
    ASSERT_FALSE(accel_impls.empty());
    // Accelerator base_time is divided by the speedup at the table level:
    // it must not exceed the slowest fixed implementation.
    double max_fixed = 0.0;
    for (const auto& impl : set.for_task(t)) {
      if (impl.pe_type != accel_type) max_fixed = std::max(max_fixed, impl.base_time);
    }
    for (std::size_t i : accel_impls) {
      EXPECT_LT(set.for_task(t)[i].base_time, max_fixed);
    }
  }
}

TEST(ImplGen, ZeroAccelAvailabilityMeansNoAccelImpls) {
  const auto graph = make_graph(20, 19);
  const auto hw = plat::make_default_hmpsoc();
  ImplGenParams p;
  p.accel_availability = 0.0;
  util::Rng rng(5);
  const auto set = generate_implementations(graph, hw, p, rng);
  for (const auto& t : hw.pe_types()) {
    if (t.kind != plat::PeKind::Accelerator) continue;
    for (tg::TaskId task = 0; task < graph.num_tasks(); ++task) {
      EXPECT_TRUE(set.compatible_with(task, t.id).empty());
    }
  }
}

TEST(ImplGen, DeterministicPerSeed) {
  const auto graph = make_graph(15, 23);
  const auto hw = plat::make_default_hmpsoc();
  util::Rng a(9), b(9);
  const auto sa = generate_implementations(graph, hw, ImplGenParams{}, a);
  const auto sb = generate_implementations(graph, hw, ImplGenParams{}, b);
  for (tg::TaskId t = 0; t < graph.num_tasks(); ++t) {
    ASSERT_EQ(sa.for_task(t).size(), sb.for_task(t).size());
    for (std::size_t i = 0; i < sa.for_task(t).size(); ++i) {
      EXPECT_DOUBLE_EQ(sa.for_task(t)[i].base_time, sb.for_task(t)[i].base_time);
      EXPECT_EQ(sa.for_task(t)[i].binary_bytes, sb.for_task(t)[i].binary_bytes);
    }
  }
}

}  // namespace
}  // namespace clr::rel
