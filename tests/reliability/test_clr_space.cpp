#include "reliability/clr_config.hpp"

#include <gtest/gtest.h>

#include <set>

namespace clr::rel {
namespace {

TEST(ClrSpace, IndexZeroIsUnprotectedForAllGranularities) {
  for (ClrGranularity g : {ClrGranularity::HwOnly, ClrGranularity::Coarse, ClrGranularity::Full}) {
    const ClrSpace space(g);
    const ClrConfig& c = space.config(ClrSpace::kUnprotected);
    EXPECT_EQ(c.hw, HwTechnique::None);
    EXPECT_EQ(c.ssw, SswTechnique::None);
    EXPECT_EQ(c.asw, AswTechnique::None);
  }
}

TEST(ClrSpace, HwOnlyContainsOnlyHardwareTechniques) {
  const ClrSpace space(ClrGranularity::HwOnly);
  EXPECT_EQ(space.size(), 3u);  // none, hardening, partial TMR
  for (const auto& c : space.configs()) {
    EXPECT_EQ(c.ssw, SswTechnique::None);
    EXPECT_EQ(c.asw, AswTechnique::None);
  }
}

TEST(ClrSpace, GranularityOrderingMatchesFig1) {
  // Fig. 1: CLR2 has more design points than CLR1, which has more than
  // HW-only. The configuration spaces must reflect that granularity order.
  const ClrSpace hw(ClrGranularity::HwOnly);
  const ClrSpace clr1(ClrGranularity::Coarse);
  const ClrSpace clr2(ClrGranularity::Full);
  EXPECT_LT(hw.size(), clr1.size());
  EXPECT_LT(clr1.size(), clr2.size());
}

TEST(ClrSpace, CoarseIsCrossLayer) {
  const ClrSpace space(ClrGranularity::Coarse);
  bool has_ssw = false, has_asw = false, has_hw = false;
  for (const auto& c : space.configs()) {
    has_ssw |= c.ssw != SswTechnique::None;
    has_asw |= c.asw != AswTechnique::None;
    has_hw |= c.hw != HwTechnique::None;
  }
  EXPECT_TRUE(has_ssw);
  EXPECT_TRUE(has_asw);
  EXPECT_TRUE(has_hw);
}

TEST(ClrSpace, FullSpaceHasNoDuplicates) {
  const ClrSpace space(ClrGranularity::Full);
  std::set<std::string> seen;
  for (const auto& c : space.configs()) {
    EXPECT_TRUE(seen.insert(to_string(c)).second) << "duplicate: " << to_string(c);
  }
}

TEST(ClrSpace, FullSpaceRetryParamsAreMeaningful) {
  const ClrSpace space(ClrGranularity::Full);
  for (const auto& c : space.configs()) {
    if (c.ssw == SswTechnique::Retry) {
      EXPECT_GE(c.ssw_param, 1);
      EXPECT_LE(c.ssw_param, 3);
      // Retry only pairs with a detecting ASW layer (it acts on detected
      // errors).
      EXPECT_NE(c.asw, AswTechnique::None);
    }
    if (c.ssw == SswTechnique::Checkpoint) {
      EXPECT_TRUE(c.ssw_param == 2 || c.ssw_param == 4);
    }
  }
}

TEST(ClrConfig, EqualityAndToString) {
  ClrConfig a{HwTechnique::PartialTmr, SswTechnique::Retry, AswTechnique::Checksum, 2};
  ClrConfig b = a;
  EXPECT_EQ(a, b);
  b.ssw_param = 3;
  EXPECT_NE(a, b);
  EXPECT_EQ(to_string(a), "hw:ptmr+ssw:retry(2)+asw:crc");
  ClrConfig plain{};
  EXPECT_EQ(to_string(plain), "hw:none+ssw:none+asw:none");
}

}  // namespace
}  // namespace clr::rel
