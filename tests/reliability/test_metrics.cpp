#include "reliability/metrics.hpp"

#include <gtest/gtest.h>

#include "platform/platform.hpp"

namespace clr::rel {
namespace {

plat::PeType make_pe_type(double avf = 0.4, double perf = 1.0, double power = 1.0) {
  plat::PeType t;
  t.id = 0;
  t.avf = avf;
  t.perf_factor = perf;
  t.power_factor = power;
  t.beta_aging = 2.0;
  return t;
}

Implementation make_impl(double time = 10.0, double power = 1.0) {
  Implementation i;
  i.pe_type = 0;
  i.base_time = time;
  i.base_power = power;
  return i;
}

TEST(MetricsModel, RejectsTypeMismatch) {
  MetricsModel model;
  auto impl = make_impl();
  impl.pe_type = 3;
  EXPECT_THROW(model.evaluate(impl, make_pe_type(), ClrConfig{}), std::invalid_argument);
}

TEST(MetricsModel, UnprotectedBaseline) {
  MetricsModel model(FaultModel{0.01});
  const auto m = model.evaluate(make_impl(), make_pe_type(), ClrConfig{});
  EXPECT_DOUBLE_EQ(m.min_ext, 10.0);
  EXPECT_DOUBLE_EQ(m.avg_ext, 10.0);  // no re-execution without temporal redundancy
  EXPECT_DOUBLE_EQ(m.avg_power, 1.0);
  // p_raw = 1 - exp(-0.01 * 10 * 0.4); without detection ALL upsets that
  // survive masking are silent errors.
  const double p_raw = 1.0 - std::exp(-0.01 * 10.0 * 0.4);
  EXPECT_NEAR(m.err_prob, p_raw, 1e-12);
}

TEST(MetricsModel, ZeroFaultRateMeansZeroErrors) {
  MetricsModel model(FaultModel{0.0});
  const ClrSpace space(ClrGranularity::Full);
  for (const auto& cfg : space.configs()) {
    const auto m = model.evaluate(make_impl(), make_pe_type(), cfg);
    EXPECT_DOUBLE_EQ(m.err_prob, 0.0) << to_string(cfg);
    EXPECT_DOUBLE_EQ(m.avg_ext, m.min_ext) << to_string(cfg);
  }
}

TEST(MetricsModel, PerfFactorScalesTime) {
  MetricsModel model;
  const auto fast = model.evaluate(make_impl(), make_pe_type(0.4, 0.5), ClrConfig{});
  const auto slow = model.evaluate(make_impl(), make_pe_type(0.4, 2.0), ClrConfig{});
  EXPECT_DOUBLE_EQ(fast.min_ext * 4.0, slow.min_ext);
}

TEST(MetricsModel, AvfScalesErrorProbability) {
  MetricsModel model(FaultModel{0.01});
  const auto masked = model.evaluate(make_impl(), make_pe_type(0.1), ClrConfig{});
  const auto exposed = model.evaluate(make_impl(), make_pe_type(0.9), ClrConfig{});
  EXPECT_LT(masked.err_prob, exposed.err_prob);
}

/// Property sweep: every configuration of the full CLR space.
class AllConfigsTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const ClrSpace& space() {
    static const ClrSpace s(ClrGranularity::Full);
    return s;
  }
};

TEST_P(AllConfigsTest, InvariantsHold) {
  MetricsModel model(FaultModel{0.02});
  const ClrConfig& cfg = space().config(GetParam());
  const auto m = model.evaluate(make_impl(), make_pe_type(), cfg);

  EXPECT_GT(m.min_ext, 0.0);
  EXPECT_GE(m.avg_ext, m.min_ext);           // re-execution only adds time
  EXPECT_GE(m.err_prob, 0.0);
  EXPECT_LE(m.err_prob, 1.0);
  EXPECT_GT(m.avg_power, 0.0);
  EXPECT_GT(m.mttf, 0.0);
  EXPECT_GT(m.eta, 0.0);
  EXPECT_NEAR(m.energy(), m.avg_ext * m.avg_power, 1e-12);
}

TEST_P(AllConfigsTest, ProtectionNeverWorseThanUnprotectedAtEqualExposure) {
  // With the same base implementation, any CLR technique must not *increase*
  // the silent+unrecovered error probability beyond the raw probability of
  // its own (longer) execution window.
  MetricsModel model(FaultModel{0.02});
  const ClrConfig& cfg = space().config(GetParam());
  const auto m = model.evaluate(make_impl(), make_pe_type(), cfg);
  const double p_raw_own_window = 1.0 - std::exp(-0.02 * m.min_ext * 0.4);
  EXPECT_LE(m.err_prob, p_raw_own_window + 1e-12) << to_string(cfg);
}

INSTANTIATE_TEST_SUITE_P(FullSpace, AllConfigsTest,
                         ::testing::Range<std::size_t>(0, ClrSpace(ClrGranularity::Full).size()));

TEST(MetricsModel, HardwareLayerReducesErrors) {
  MetricsModel model(FaultModel{0.02});
  ClrConfig none{};
  ClrConfig tmr{HwTechnique::PartialTmr, SswTechnique::None, AswTechnique::None, 0};
  ClrConfig hard{HwTechnique::Hardening, SswTechnique::None, AswTechnique::None, 0};
  const auto m_none = model.evaluate(make_impl(), make_pe_type(), none);
  const auto m_tmr = model.evaluate(make_impl(), make_pe_type(), tmr);
  const auto m_hard = model.evaluate(make_impl(), make_pe_type(), hard);
  EXPECT_LT(m_tmr.err_prob, m_hard.err_prob);
  EXPECT_LT(m_hard.err_prob, m_none.err_prob);
  // ... at a power premium.
  EXPECT_GT(m_tmr.avg_power, m_hard.avg_power);
  EXPECT_GT(m_hard.avg_power, m_none.avg_power);
}

TEST(MetricsModel, RetryReducesErrorsAndAddsAverageTime) {
  MetricsModel model(FaultModel{0.05});
  ClrConfig detect_only{HwTechnique::None, SswTechnique::None, AswTechnique::Checksum, 0};
  ClrConfig retry1{HwTechnique::None, SswTechnique::Retry, AswTechnique::Checksum, 1};
  ClrConfig retry3{HwTechnique::None, SswTechnique::Retry, AswTechnique::Checksum, 3};
  const auto m0 = model.evaluate(make_impl(), make_pe_type(), detect_only);
  const auto m1 = model.evaluate(make_impl(), make_pe_type(), retry1);
  const auto m3 = model.evaluate(make_impl(), make_pe_type(), retry3);
  EXPECT_LT(m1.err_prob, m0.err_prob);
  EXPECT_LE(m3.err_prob, m1.err_prob);  // more retries, fewer residual errors
  EXPECT_GT(m1.avg_ext, m1.min_ext);    // expected re-execution time
  EXPECT_GE(m3.avg_ext, m1.avg_ext - 1e-12);
}

TEST(MetricsModel, CheckpointRollbackCheaperThanFullRetryReexecution) {
  MetricsModel model(FaultModel{0.05});
  ClrConfig retry{HwTechnique::None, SswTechnique::Retry, AswTechnique::Checksum, 1};
  ClrConfig ckpt{HwTechnique::None, SswTechnique::Checkpoint, AswTechnique::Checksum, 4};
  const auto m_retry = model.evaluate(make_impl(), make_pe_type(), retry);
  const auto m_ckpt = model.evaluate(make_impl(), make_pe_type(), ckpt);
  // Expected *re-execution* time (beyond the error-free run) is smaller for
  // checkpointing: it rolls back one of 4 segments instead of the whole task.
  EXPECT_LT(m_ckpt.avg_ext - m_ckpt.min_ext, m_retry.avg_ext - m_retry.min_ext);
}

TEST(MetricsModel, CorrectionBeatsDetectionOnly) {
  MetricsModel model(FaultModel{0.05});
  ClrConfig crc{HwTechnique::None, SswTechnique::None, AswTechnique::Checksum, 0};
  ClrConfig hamming{HwTechnique::None, SswTechnique::None, AswTechnique::Hamming, 0};
  ClrConfig triple{HwTechnique::None, SswTechnique::None, AswTechnique::CodeTripling, 0};
  const auto m_crc = model.evaluate(make_impl(), make_pe_type(), crc);
  const auto m_ham = model.evaluate(make_impl(), make_pe_type(), hamming);
  const auto m_tri = model.evaluate(make_impl(), make_pe_type(), triple);
  EXPECT_LT(m_ham.err_prob, m_crc.err_prob);
  EXPECT_LT(m_tri.err_prob, m_crc.err_prob);
}

TEST(MetricsModel, AgingScaleDecreasesWithPower) {
  MetricsModel model;
  const auto low = model.evaluate(make_impl(10.0, 0.5), make_pe_type(), ClrConfig{});
  const auto high = model.evaluate(make_impl(10.0, 2.0), make_pe_type(), ClrConfig{});
  EXPECT_GT(low.eta, high.eta);
  EXPECT_GT(low.mttf, high.mttf);
}

TEST(MetricsModel, MttfScalesWithWeibullShape) {
  MetricsModel model;
  auto t1 = make_pe_type();
  t1.beta_aging = 1.0;  // MTTF = eta * gamma(2) = eta
  auto t2 = make_pe_type();
  t2.beta_aging = 2.0;  // MTTF = eta * gamma(1.5) ~ 0.886 eta
  const auto m1 = model.evaluate(make_impl(), t1, ClrConfig{});
  const auto m2 = model.evaluate(make_impl(), t2, ClrConfig{});
  EXPECT_NEAR(m1.mttf, m1.eta, 1e-9);
  EXPECT_NEAR(m2.mttf / m2.eta, std::tgamma(1.5), 1e-9);
}

TEST(MetricsModel, LongerTasksAreMoreExposed) {
  MetricsModel model(FaultModel{0.01});
  const auto short_task = model.evaluate(make_impl(5.0), make_pe_type(), ClrConfig{});
  const auto long_task = model.evaluate(make_impl(50.0), make_pe_type(), ClrConfig{});
  EXPECT_LT(short_task.err_prob, long_task.err_prob);
}

}  // namespace
}  // namespace clr::rel
