#include <gtest/gtest.h>

#include "reliability/metrics.hpp"

namespace clr::rel {
namespace {

TEST(ThermalModel, JunctionTemperatureRisesLinearlyWithPower) {
  ThermalModel tm;
  EXPECT_DOUBLE_EQ(tm.junction_k(0.0), tm.ambient_k);
  EXPECT_DOUBLE_EQ(tm.junction_k(2.0), tm.ambient_k + 2.0 * tm.rth_k_per_w);
}

TEST(ThermalModel, EtaAtReferenceTemperatureIsEtaRef) {
  ThermalModel tm;
  // Power that exactly reaches T_ref.
  const double w_ref = (tm.t_ref_k - tm.ambient_k) / tm.rth_k_per_w;
  EXPECT_NEAR(tm.eta(w_ref), tm.eta_ref, 1e-6 * tm.eta_ref);
}

TEST(ThermalModel, HotterMeansShorterLife) {
  ThermalModel tm;
  EXPECT_GT(tm.eta(0.5), tm.eta(1.0));
  EXPECT_GT(tm.eta(1.0), tm.eta(3.0));
}

TEST(ThermalModel, ArrheniusAccelerationFactorIsPhysical) {
  // Rule of thumb: every ~10 K of junction temperature roughly halves the
  // electromigration lifetime around typical operating points (Ea ~ 0.7 eV).
  ThermalModel tm;
  const double w1 = 1.0;
  const double w2 = w1 + 10.0 / tm.rth_k_per_w;  // +10 K
  const double factor = tm.eta(w1) / tm.eta(w2);
  EXPECT_GT(factor, 1.5);
  EXPECT_LT(factor, 3.0);
}

TEST(ThermalModel, ColdAmbientExtendsLife) {
  ThermalModel hot;
  ThermalModel cold = hot;
  cold.ambient_k = 273.0;
  EXPECT_GT(cold.eta(1.0), hot.eta(1.0));
}

TEST(ThermalModel, FlowsThroughTaskMetrics) {
  plat::PeType pe;
  pe.id = 0;
  pe.beta_aging = 2.0;
  Implementation impl;
  impl.pe_type = 0;
  impl.base_time = 10.0;
  impl.base_power = 1.0;

  ThermalModel cool;
  cool.ambient_k = 300.0;
  ThermalModel hot;
  hot.ambient_k = 340.0;
  MetricsModel cool_model(FaultModel{}, cool);
  MetricsModel hot_model(FaultModel{}, hot);
  const auto m_cool = cool_model.evaluate(impl, pe, ClrConfig{});
  const auto m_hot = hot_model.evaluate(impl, pe, ClrConfig{});
  EXPECT_GT(m_cool.eta, m_hot.eta);
  EXPECT_GT(m_cool.mttf, m_hot.mttf);
  // MTTF = eta * Gamma(1 + 1/beta) in both.
  EXPECT_NEAR(m_cool.mttf / m_cool.eta, std::tgamma(1.5), 1e-9);
}

TEST(ThermalModel, PowerHungryRedundancyAgesFaster) {
  plat::PeType pe;
  pe.id = 0;
  Implementation impl;
  impl.pe_type = 0;
  MetricsModel model;
  const auto plain = model.evaluate(impl, pe, ClrConfig{});
  const auto tmr = model.evaluate(
      impl, pe, ClrConfig{HwTechnique::PartialTmr, SswTechnique::None, AswTechnique::None, 0});
  EXPECT_LT(tmr.eta, plain.eta);  // 2.2x power -> hotter -> shorter life
}

}  // namespace
}  // namespace clr::rel
