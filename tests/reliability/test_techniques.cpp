#include "reliability/techniques.hpp"

#include <gtest/gtest.h>

namespace clr::rel {
namespace {

TEST(HwTraits, NoneIsIdentity) {
  const auto& t = hw_traits(HwTechnique::None);
  EXPECT_DOUBLE_EQ(t.time_factor, 1.0);
  EXPECT_DOUBLE_EQ(t.power_factor, 1.0);
  EXPECT_DOUBLE_EQ(t.residual, 1.0);
}

TEST(HwTraits, ProtectionCostsAndMasks) {
  for (HwTechnique tech : {HwTechnique::Hardening, HwTechnique::PartialTmr}) {
    const auto& t = hw_traits(tech);
    EXPECT_GE(t.time_factor, 1.0) << to_string(tech);
    EXPECT_GT(t.power_factor, 1.0) << to_string(tech);
    EXPECT_GT(t.residual, 0.0) << to_string(tech);
    EXPECT_LT(t.residual, 1.0) << to_string(tech);
  }
}

TEST(HwTraits, TmrMasksMoreThanHardeningButCostsMorePower) {
  const auto& tmr = hw_traits(HwTechnique::PartialTmr);
  const auto& hard = hw_traits(HwTechnique::Hardening);
  EXPECT_LT(tmr.residual, hard.residual);
  EXPECT_GT(tmr.power_factor, hard.power_factor);
}

TEST(SswTraits, NoneIsIdentity) {
  const auto& t = ssw_traits(SswTechnique::None);
  EXPECT_DOUBLE_EQ(t.base_time_factor, 1.0);
  EXPECT_DOUBLE_EQ(t.per_unit_overhead, 0.0);
  EXPECT_DOUBLE_EQ(t.power_factor, 1.0);
}

TEST(SswTraits, TemporalRedundancyHasOverheads) {
  EXPECT_GT(ssw_traits(SswTechnique::Retry).base_time_factor, 1.0);
  EXPECT_GT(ssw_traits(SswTechnique::Checkpoint).base_time_factor, 1.0);
  EXPECT_GT(ssw_traits(SswTechnique::Checkpoint).per_unit_overhead, 0.0);
}

TEST(AswTraits, CoverageAlgebraIsSane) {
  for (AswTechnique tech : {AswTechnique::None, AswTechnique::Checksum, AswTechnique::Hamming,
                            AswTechnique::CodeTripling}) {
    const auto& t = asw_traits(tech);
    EXPECT_GE(t.detect_coverage, 0.0) << to_string(tech);
    EXPECT_LE(t.detect_coverage, 1.0) << to_string(tech);
    EXPECT_GE(t.correct_coverage, 0.0) << to_string(tech);
    // Correction implies detection.
    EXPECT_LE(t.correct_coverage, t.detect_coverage) << to_string(tech);
    EXPECT_GE(t.time_factor, 1.0) << to_string(tech);
    EXPECT_GE(t.power_factor, 1.0) << to_string(tech);
  }
}

TEST(AswTraits, ChecksumDetectsButDoesNotCorrect) {
  const auto& t = asw_traits(AswTechnique::Checksum);
  EXPECT_GT(t.detect_coverage, 0.0);
  EXPECT_DOUBLE_EQ(t.correct_coverage, 0.0);
}

TEST(AswTraits, TriplingIsStrongestAndSlowest) {
  const auto& tri = asw_traits(AswTechnique::CodeTripling);
  const auto& ham = asw_traits(AswTechnique::Hamming);
  const auto& crc = asw_traits(AswTechnique::Checksum);
  EXPECT_GT(tri.correct_coverage, ham.correct_coverage);
  EXPECT_GT(tri.time_factor, ham.time_factor);
  EXPECT_GT(ham.time_factor, crc.time_factor);
}

TEST(ToString, AllValuesHaveNames) {
  EXPECT_EQ(to_string(HwTechnique::None), "hw:none");
  EXPECT_EQ(to_string(HwTechnique::PartialTmr), "hw:ptmr");
  EXPECT_EQ(to_string(HwTechnique::Hardening), "hw:harden");
  EXPECT_EQ(to_string(SswTechnique::Retry), "ssw:retry");
  EXPECT_EQ(to_string(SswTechnique::Checkpoint), "ssw:ckpt");
  EXPECT_EQ(to_string(AswTechnique::Hamming), "asw:hamming");
  EXPECT_EQ(to_string(AswTechnique::CodeTripling), "asw:triple");
}

}  // namespace
}  // namespace clr::rel
