#include "experiments/runner.hpp"

#include <gtest/gtest.h>

#include <set>

namespace clr::exp {
namespace {

// Small fixture mirroring the runtime policy tests: 3 stored points with an
// explicit cost table, so no design-time flow (and no AppInstance) is needed.
dse::DesignDb make_db() {
  dse::DesignDb db;
  auto add = [&](double s, double f, double j, int tag) {
    dse::DesignPoint p;
    p.makespan = s;
    p.func_rel = f;
    p.energy = j;
    p.config.tasks.resize(1);
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(100, 0.95, 50, 0);
  add(120, 0.99, 80, 1);
  add(80, 0.92, 30, 2);
  return db;
}

rt::DrcMatrix make_drc() {
  return rt::DrcMatrix(3, {0, 10, 2,
                           10, 0, 10,
                           2, 10, 0});
}

dse::MetricRanges make_ranges() {
  dse::MetricRanges r;
  r.makespan_min = 80.0;
  r.makespan_max = 120.0;
  r.func_rel_min = 0.92;
  r.func_rel_max = 0.99;
  r.energy_min = 30.0;
  r.energy_max = 80.0;
  return r;
}

RunnerCell make_cell(const dse::DesignDb& db, const rt::DrcMatrix& drc, PolicyKind kind,
                     double p_rc, std::uint64_t seed) {
  RunnerCell cell;
  cell.db = &db;
  cell.drc = &drc;
  cell.ranges = make_ranges();
  cell.params.kind = kind;
  cell.params.p_rc = p_rc;
  cell.params.sim.total_cycles = 2e4;
  cell.seed = seed;
  return cell;
}

TEST(ReplicationSeed, DeterministicAndDecorrelated) {
  std::set<std::uint64_t> seen;
  for (std::size_t rep = 0; rep < 64; ++rep) {
    const auto s = replication_seed(42, rep);
    EXPECT_EQ(s, replication_seed(42, rep));
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 64u);  // all distinct
  EXPECT_NE(replication_seed(42, 0), replication_seed(43, 0));
}

TEST(ReplicateStats, SummarizesEveryField) {
  rt::RuntimeStats a;
  a.num_events = 10;
  a.num_reconfigs = 4;
  a.num_infeasible_events = 1;
  a.avg_energy = 50.0;
  a.total_reconfig_cost = 100.0;
  a.avg_reconfig_cost = 10.0;
  a.max_drc = 30.0;
  rt::RuntimeStats b = a;
  b.num_events = 20;
  b.avg_energy = 70.0;
  const auto s = replicate_stats({a, b});
  EXPECT_EQ(s.replications, 2u);
  EXPECT_DOUBLE_EQ(s.num_events.mean, 15.0);
  EXPECT_DOUBLE_EQ(s.num_events.min, 10.0);
  EXPECT_DOUBLE_EQ(s.num_events.max, 20.0);
  EXPECT_DOUBLE_EQ(s.avg_energy.mean, 60.0);
  EXPECT_GT(s.avg_energy.ci95, 0.0);
  EXPECT_DOUBLE_EQ(s.num_reconfigs.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.num_reconfigs.ci95, 0.0);  // identical samples
  EXPECT_DOUBLE_EQ(s.max_drc.mean, 30.0);
}

TEST(Runner, AddCellValidatesInputs) {
  const auto db = make_db();
  const auto drc = make_drc();
  Runner runner;
  RunnerCell no_db;
  no_db.drc = &drc;
  EXPECT_THROW(runner.add_cell(no_db), std::invalid_argument);
  RunnerCell no_source;
  no_source.db = &db;
  EXPECT_THROW(runner.add_cell(no_source), std::invalid_argument);
  const rt::DrcMatrix wrong_size(2, {0, 1, 1, 0});
  RunnerCell mismatched;
  mismatched.db = &db;
  mismatched.drc = &wrong_size;
  EXPECT_THROW(runner.add_cell(mismatched), std::invalid_argument);
}

TEST(Runner, BitForBitIdenticalAcrossJobCounts) {
  // The §5.6 determinism contract, extended to the runtime harness: the same
  // grid must produce byte-identical replication results at any worker count.
  const auto db = make_db();
  const auto drc = make_drc();
  const auto run_with_jobs = [&](std::size_t jobs) {
    RunnerConfig config;
    config.replications = 4;
    config.jobs = jobs;
    config.keep_runs = true;
    Runner runner(config);
    runner.add_cell(make_cell(db, drc, PolicyKind::Ura, 0.5, 111));
    runner.add_cell(make_cell(db, drc, PolicyKind::Aura, 0.3, 222));
    runner.add_cell(make_cell(db, drc, PolicyKind::Baseline, 0.0, 333));
    return runner.run();
  };
  const auto serial = run_with_jobs(1);
  const auto parallel4 = run_with_jobs(4);
  ASSERT_EQ(serial.size(), parallel4.size());
  for (std::size_t c = 0; c < serial.size(); ++c) {
    ASSERT_EQ(serial[c].runs.size(), parallel4[c].runs.size());
    for (std::size_t r = 0; r < serial[c].runs.size(); ++r) {
      const auto& a = serial[c].runs[r];
      const auto& b = parallel4[c].runs[r];
      EXPECT_EQ(a.num_events, b.num_events);
      EXPECT_EQ(a.num_reconfigs, b.num_reconfigs);
      EXPECT_EQ(a.num_infeasible_events, b.num_infeasible_events);
      EXPECT_DOUBLE_EQ(a.avg_energy, b.avg_energy);
      EXPECT_DOUBLE_EQ(a.total_reconfig_cost, b.total_reconfig_cost);
      EXPECT_DOUBLE_EQ(a.avg_reconfig_cost, b.avg_reconfig_cost);
      EXPECT_DOUBLE_EQ(a.max_drc, b.max_drc);
    }
    EXPECT_DOUBLE_EQ(serial[c].stats.avg_energy.mean, parallel4[c].stats.avg_energy.mean);
    EXPECT_DOUBLE_EQ(serial[c].stats.avg_energy.ci95, parallel4[c].stats.avg_energy.ci95);
  }
}

TEST(Runner, ReplicationsActuallyDiffer) {
  const auto db = make_db();
  const auto drc = make_drc();
  RunnerConfig config;
  config.replications = 3;
  config.keep_runs = true;
  Runner runner(config);
  runner.add_cell(make_cell(db, drc, PolicyKind::Ura, 0.5, 7));
  const auto results = runner.run();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].runs.size(), 3u);
  // Different derived seeds -> different event sequences (overwhelmingly).
  EXPECT_NE(results[0].runs[0].avg_energy, results[0].runs[1].avg_energy);
  EXPECT_EQ(results[0].stats.replications, 3u);
}

TEST(Runner, KeepRunsOffDropsRawRuns) {
  const auto db = make_db();
  const auto drc = make_drc();
  RunnerConfig config;
  config.replications = 2;
  Runner runner(config);
  runner.add_cell(make_cell(db, drc, PolicyKind::Ura, 0.5, 7));
  const auto results = runner.run();
  EXPECT_TRUE(results[0].runs.empty());
  EXPECT_EQ(results[0].stats.replications, 2u);
}

TEST(Runner, MetricsCountJobs) {
  const auto db = make_db();
  const auto drc = make_drc();
  RunnerConfig config;
  config.replications = 3;
  Runner runner(config);
  runner.add_cell(make_cell(db, drc, PolicyKind::Ura, 0.5, 7));
  runner.add_cell(make_cell(db, drc, PolicyKind::Ura, 1.0, 8));
  runner.run();
  EXPECT_EQ(runner.metrics().counter("runner.cells").value(), 2u);
  EXPECT_EQ(runner.metrics().counter("runner.jobs").value(), 6u);
  // Explicit-drc cells never trigger matrix builds.
  EXPECT_EQ(runner.metrics().counter("runner.drc_builds").value(), 0u);
}

TEST(Runner, DrcMatrixBuiltOncePerDatabase) {
  // With an AppInstance source, all cells over the same (app, db) pair share
  // one memoized cost matrix — the acceptance criterion for grid sweeps.
  const auto app = make_synthetic_app(6, 123);
  dse::DesignDb db;
  const auto n = app->graph().num_tasks();
  for (int tag = 0; tag < 3; ++tag) {
    dse::DesignPoint p;
    p.makespan = 100.0 + tag;
    p.func_rel = 0.9;
    p.energy = 50.0 + tag;
    p.config.tasks.resize(n);
    for (auto& t : p.config.tasks) t.priority = tag;
    db.add(p);
  }
  dse::MetricRanges ranges = make_ranges();
  RunnerConfig config;
  config.replications = 2;
  Runner runner(config);
  for (double prc : {0.0, 0.5, 1.0}) {
    RunnerCell cell;
    cell.app = app.get();
    cell.db = &db;
    cell.ranges = ranges;
    cell.params.kind = PolicyKind::Ura;
    cell.params.p_rc = prc;
    cell.params.sim.total_cycles = 5e3;
    cell.seed = 9;
    runner.add_cell(cell);
  }
  runner.run();
  EXPECT_EQ(runner.metrics().counter("runner.drc_builds").value(), 1u);
  EXPECT_EQ(runner.metrics().counter("runner.drc_cache_hits").value(), 2u);
}

TEST(GridReport, ContainsCellsAndSummaries) {
  const auto db = make_db();
  const auto drc = make_drc();
  RunnerConfig config;
  config.replications = 2;
  Runner runner(config);
  auto cell = make_cell(db, drc, PolicyKind::Ura, 0.25, 5);
  cell.label = "probe-cell";
  runner.add_cell(cell);
  const auto results = runner.run();
  const auto report = grid_report("unit-grid", config, results, &runner.metrics());
  const std::string text = report.dump(0);
  EXPECT_NE(text.find("\"experiment\""), std::string::npos);
  EXPECT_NE(text.find("unit-grid"), std::string::npos);
  EXPECT_NE(text.find("probe-cell"), std::string::npos);
  EXPECT_NE(text.find("\"policy\""), std::string::npos);
  EXPECT_NE(text.find("\"avg_energy\""), std::string::npos);
  EXPECT_NE(text.find("\"ci95\""), std::string::npos);
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("runner.jobs"), std::string::npos);
}

}  // namespace
}  // namespace clr::exp
