// Session-layer checkpoint/resume tests (DESIGN.md §5.12): interrupted runs
// resume bit-identically, completed replication jobs never re-run, and
// mismatched parameters/grids are refused instead of silently diverging.

#include "experiments/session.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "experiments/app.hpp"
#include "io/checkpoint.hpp"

namespace clr::exp {
namespace {

namespace fs = std::filesystem;

// --- Explore fixtures --------------------------------------------------------

FlowParams small_flow_params() {
  FlowParams params;
  params.spec_samples = 16;
  params.dse.base_ga = {.population = 10, .generations = 5};
  params.dse.red_ga = {.population = 8, .generations = 4};
  params.dse.calibration_samples = 12;
  params.dse.max_red_seeds = 3;
  params.dse.max_base_points = 8;
  params.dse.threads = 1;
  return params;
}

void expect_db_equal(const dse::DesignDb& a, const dse::DesignDb& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.point(i).config, b.point(i).config) << what << " point " << i;
    EXPECT_DOUBLE_EQ(a.point(i).energy, b.point(i).energy) << what << " point " << i;
    EXPECT_DOUBLE_EQ(a.point(i).makespan, b.point(i).makespan) << what << " point " << i;
    EXPECT_DOUBLE_EQ(a.point(i).func_rel, b.point(i).func_rel) << what << " point " << i;
    EXPECT_EQ(a.point(i).extra, b.point(i).extra) << what << " point " << i;
  }
}

void expect_flow_equal(const FlowResult& a, const FlowResult& b) {
  EXPECT_DOUBLE_EQ(a.spec.max_makespan, b.spec.max_makespan);
  EXPECT_DOUBLE_EQ(a.spec.min_func_rel, b.spec.min_func_rel);
  expect_db_equal(a.based, b.based, "based");
  expect_db_equal(a.red, b.red, "red");
}

class SessionTempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("clr_session_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

// --- Explore sessions --------------------------------------------------------

TEST_F(SessionTempDir, ExploreBudgetStopThenResumeMatchesUninterrupted) {
  const auto app = make_synthetic_app(7, 11);
  const FlowParams params = small_flow_params();
  const std::uint64_t seed = 77;

  // Reference: one uninterrupted run, no checkpointing at all.
  SessionControl plain;
  const ExploreOutcome full = run_explore_session(*app, params, seed, plain);
  ASSERT_TRUE(full.complete);
  ASSERT_FALSE(full.flow.red.empty());

  // Interrupted: stop after a few boundaries, then resume repeatedly until
  // done. Every leg shares one command line (resume + checkpoint path).
  SessionControl control;
  control.checkpoint_path = path("explore.clrdb");
  control.checkpoint_every = 1;
  control.resume = true;
  control.step_budget = 3;

  ExploreOutcome out = run_explore_session(*app, params, seed, control);
  EXPECT_FALSE(out.complete);
  EXPECT_FALSE(out.resumed);  // first leg starts fresh despite --resume
  EXPECT_EQ(out.stop_reason, util::StopReason::Budget);
  EXPECT_GT(out.checkpoints_written, 0u);

  int legs = 0;
  while (!out.complete) {
    ASSERT_LT(++legs, 64) << "resume loop failed to converge";
    out = run_explore_session(*app, params, seed, control);
    EXPECT_TRUE(out.resumed);
  }
  EXPECT_EQ(out.stop_reason, util::StopReason::None);
  expect_flow_equal(full.flow, out.flow);
}

TEST_F(SessionTempDir, ExploreResumeAcrossThreadCountsMatches) {
  const auto app = make_synthetic_app(7, 11);
  FlowParams params = small_flow_params();
  const std::uint64_t seed = 78;

  SessionControl plain;
  const ExploreOutcome full = run_explore_session(*app, params, seed, plain);
  ASSERT_TRUE(full.complete);

  // Interrupt at --jobs 4, finish at --jobs 1: the checkpoint carries no
  // thread-count residue (hash excludes it; results are thread-invariant).
  SessionControl control;
  control.checkpoint_path = path("explore.clrdb");
  control.resume = true;
  control.step_budget = 4;
  params.dse.threads = 4;
  ExploreOutcome out = run_explore_session(*app, params, seed, control);
  ASSERT_FALSE(out.complete);

  params.dse.threads = 1;
  control.step_budget = 0;
  out = run_explore_session(*app, params, seed, control);
  ASSERT_TRUE(out.complete);
  EXPECT_TRUE(out.resumed);
  expect_flow_equal(full.flow, out.flow);
}

TEST_F(SessionTempDir, ExploreParamMismatchIsRefused) {
  const auto app = make_synthetic_app(7, 11);
  FlowParams params = small_flow_params();

  SessionControl control;
  control.checkpoint_path = path("explore.clrdb");
  control.resume = true;
  control.step_budget = 2;
  ASSERT_FALSE(run_explore_session(*app, params, 77, control).complete);

  // Same checkpoint, different generations budget: refuse, don't diverge.
  params.dse.base_ga.generations = 6;
  control.step_budget = 0;
  EXPECT_THROW(run_explore_session(*app, params, 77, control), std::runtime_error);
  // A different seed is just as much a different run.
  params.dse.base_ga.generations = 5;
  EXPECT_THROW(run_explore_session(*app, params, 78, control), std::runtime_error);
}

TEST_F(SessionTempDir, ExploreResumeWithNoCheckpointStartsFresh) {
  const auto app = make_synthetic_app(7, 11);
  SessionControl control;
  control.checkpoint_path = path("never_written.clrdb");
  control.resume = true;
  const ExploreOutcome out = run_explore_session(*app, small_flow_params(), 77, control);
  EXPECT_TRUE(out.complete);
  EXPECT_FALSE(out.resumed);
}

TEST(Session, ControlValidation) {
  const auto app = make_synthetic_app(7, 11);
  SessionControl control;
  control.checkpoint_every = 0;
  EXPECT_THROW(run_explore_session(*app, small_flow_params(), 1, control),
               std::invalid_argument);
  control.checkpoint_every = 1;
  control.resume = true;  // resume without a checkpoint path
  EXPECT_THROW(run_explore_session(*app, small_flow_params(), 1, control),
               std::invalid_argument);
}

TEST(Session, ParamHashTracksResultAffectingKnobsOnly) {
  const auto app = make_synthetic_app(7, 11);
  FlowParams params = small_flow_params();
  const std::uint64_t base = explore_param_hash(*app, params, 77);
  EXPECT_EQ(explore_param_hash(*app, params, 77), base);
  EXPECT_NE(explore_param_hash(*app, params, 78), base);

  FlowParams other = params;
  other.dse.base_ga.generations += 1;
  EXPECT_NE(explore_param_hash(*app, other, 77), base);

  // Pure performance knobs must not invalidate a checkpoint.
  other = params;
  other.dse.threads = 8;
  other.dse.base_ga.threads = 8;
  other.dse.batched_eval = !other.dse.batched_eval;
  EXPECT_EQ(explore_param_hash(*app, other, 77), base);
}

// --- Runner fixtures ---------------------------------------------------------

dse::DesignDb make_db() {
  dse::DesignDb db;
  auto add = [&](double s, double f, double j, int tag) {
    dse::DesignPoint p;
    p.makespan = s;
    p.func_rel = f;
    p.energy = j;
    p.config.tasks.resize(1);
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(100, 0.95, 50, 0);
  add(120, 0.99, 80, 1);
  add(80, 0.92, 30, 2);
  return db;
}

rt::DrcMatrix make_drc() {
  return rt::DrcMatrix(3, {0, 10, 2, 10, 0, 10, 2, 10, 0});
}

dse::MetricRanges make_ranges() {
  dse::MetricRanges r;
  r.makespan_min = 80.0;
  r.makespan_max = 120.0;
  r.func_rel_min = 0.92;
  r.func_rel_max = 0.99;
  r.energy_min = 30.0;
  r.energy_max = 80.0;
  return r;
}

void add_grid(Runner& runner, const dse::DesignDb& db, const rt::DrcMatrix& drc) {
  for (const PolicyKind kind : {PolicyKind::Baseline, PolicyKind::Ura}) {
    RunnerCell cell;
    cell.db = &db;
    cell.drc = &drc;
    cell.ranges = make_ranges();
    cell.params.kind = kind;
    cell.params.p_rc = 0.3;
    cell.params.sim.total_cycles = 2e4;
    cell.seed = 42 + static_cast<std::uint64_t>(kind);
    cell.label = std::string("cell_") + std::to_string(static_cast<int>(kind));
    runner.add_cell(cell);
  }
}

/// The ISSUE 10 grid: every policy kind (including the tabular MDP policy),
/// with the MDP cell additionally running under speculative prefetch.
void add_policy_grid(Runner& runner, const dse::DesignDb& db, const rt::DrcMatrix& drc) {
  for (const PolicyKind kind :
       {PolicyKind::Baseline, PolicyKind::Ura, PolicyKind::Aura, PolicyKind::Mdp}) {
    RunnerCell cell;
    cell.db = &db;
    cell.drc = &drc;
    cell.ranges = make_ranges();
    cell.params.kind = kind;
    cell.params.p_rc = 0.3;
    cell.params.sim.total_cycles = 2e4;
    cell.params.mdp.makespan_bins = 4;
    cell.params.mdp.func_rel_bins = 4;
    cell.params.prefetch = (kind == PolicyKind::Mdp);
    cell.seed = 42 + static_cast<std::uint64_t>(kind);
    cell.label = std::string("cell_") + std::to_string(static_cast<int>(kind));
    runner.add_cell(cell);
  }
}

void expect_summary_equal(const util::Summary& a, const util::Summary& b, const char* what) {
  EXPECT_DOUBLE_EQ(a.mean, b.mean) << what;
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev) << what;
  EXPECT_DOUBLE_EQ(a.ci95, b.ci95) << what;
  EXPECT_DOUBLE_EQ(a.min, b.min) << what;
  EXPECT_DOUBLE_EQ(a.max, b.max) << what;
}

void expect_results_equal(const std::vector<CellResult>& a, const std::vector<CellResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].stats.replications, b[i].stats.replications);
    expect_summary_equal(a[i].stats.num_events, b[i].stats.num_events, "num_events");
    expect_summary_equal(a[i].stats.num_reconfigs, b[i].stats.num_reconfigs, "num_reconfigs");
    expect_summary_equal(a[i].stats.avg_energy, b[i].stats.avg_energy, "avg_energy");
    expect_summary_equal(a[i].stats.avg_reconfig_cost, b[i].stats.avg_reconfig_cost,
                         "avg_reconfig_cost");
    expect_summary_equal(a[i].stats.max_drc, b[i].stats.max_drc, "max_drc");
    expect_summary_equal(a[i].stats.qos_violation_time, b[i].stats.qos_violation_time,
                         "qos_violation_time");
    expect_summary_equal(a[i].stats.availability, b[i].stats.availability, "availability");
  }
}

// --- Runner sessions ---------------------------------------------------------

TEST_F(SessionTempDir, RunnerBudgetStopThenResumeMatchesUninterrupted) {
  const auto db = make_db();
  const auto drc = make_drc();

  RunnerConfig config;
  config.replications = 4;
  config.jobs = 1;
  Runner full_runner(config);
  add_grid(full_runner, db, drc);
  const std::vector<CellResult> full = full_runner.run();

  // Interrupt after 3 single-job waves at jobs=8, resume to completion at
  // jobs=1: aggregation must be bit-identical to the uninterrupted run.
  SessionControl control;
  control.checkpoint_path = path("grid.clrdb");
  control.checkpoint_every = 1;
  control.resume = true;
  control.step_budget = 3;

  RunnerConfig wide = config;
  wide.jobs = 8;
  Runner first(wide);
  add_grid(first, db, drc);
  RunnerOutcome out = run_runner_session(first, control);
  EXPECT_FALSE(out.run.complete);
  EXPECT_FALSE(out.resumed);
  EXPECT_EQ(out.stop_reason, util::StopReason::Budget);
  EXPECT_LT(out.run.jobs_done, out.run.jobs_total);
  EXPECT_GT(out.run.jobs_done, 0u);

  control.step_budget = 0;
  Runner second(config);
  add_grid(second, db, drc);
  const RunnerOutcome resumed = run_runner_session(second, control);
  ASSERT_TRUE(resumed.run.complete);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.run.jobs_done, resumed.run.jobs_total);
  expect_results_equal(full, resumed.run.results);
}

TEST_F(SessionTempDir, RunnerResumeNeverRerunsCompletedJobs) {
  const auto db = make_db();
  const auto drc = make_drc();

  RunnerConfig config;
  config.replications = 5;
  config.jobs = 1;

  SessionControl control;
  control.checkpoint_path = path("grid.clrdb");
  control.resume = true;
  control.step_budget = 4;

  Runner first(config);
  add_grid(first, db, drc);
  const RunnerOutcome out = run_runner_session(first, control);
  ASSERT_FALSE(out.run.complete);
  const std::size_t done_first = out.run.jobs_done;
  EXPECT_EQ(first.metrics().counter("runner.jobs").value(), done_first);

  control.step_budget = 0;
  Runner second(config);
  add_grid(second, db, drc);
  const RunnerOutcome resumed = run_runner_session(second, control);
  ASSERT_TRUE(resumed.run.complete);
  // The second runner must execute exactly the leftover jobs — replication
  // cells completed before the interrupt are never re-simulated.
  EXPECT_EQ(second.metrics().counter("runner.jobs").value(),
            resumed.run.jobs_total - done_first);
}

TEST_F(SessionTempDir, RunnerGridMismatchIsRefused) {
  const auto db = make_db();
  const auto drc = make_drc();

  RunnerConfig config;
  config.replications = 3;
  config.jobs = 1;

  SessionControl control;
  control.checkpoint_path = path("grid.clrdb");
  control.resume = true;
  control.step_budget = 2;
  Runner first(config);
  add_grid(first, db, drc);
  ASSERT_FALSE(run_runner_session(first, control).run.complete);

  // Different replication count => different grid.
  control.step_budget = 0;
  RunnerConfig other = config;
  other.replications = 4;
  Runner second(other);
  add_grid(second, db, drc);
  EXPECT_THROW(run_runner_session(second, control), std::runtime_error);
}

TEST(Session, GridHashIgnoresJobsButTracksTheGrid) {
  const auto db = make_db();
  const auto drc = make_drc();

  RunnerConfig config;
  config.replications = 3;
  Runner a(config);
  add_grid(a, db, drc);

  RunnerConfig wide = config;
  wide.jobs = 8;
  Runner b(wide);
  add_grid(b, db, drc);
  EXPECT_EQ(a.grid_hash(), b.grid_hash());

  RunnerConfig more = config;
  more.replications = 4;
  Runner c(more);
  add_grid(c, db, drc);
  EXPECT_NE(a.grid_hash(), c.grid_hash());

  Runner d(config);
  add_grid(d, db, drc);
  RunnerCell extra;
  extra.db = &db;
  extra.drc = &drc;
  extra.ranges = make_ranges();
  extra.params.kind = PolicyKind::Aura;
  extra.params.sim.total_cycles = 2e4;
  extra.seed = 7;
  d.add_cell(extra);
  EXPECT_NE(a.grid_hash(), d.grid_hash());
}

TEST_F(SessionTempDir, RunnerMdpPrefetchGridResumesBitIdentically) {
  // The full policy grid — baseline, uRA, AuRA and the tabular MDP policy
  // (the latter under prefetch) — interrupted at jobs=8 and finished at
  // jobs=1 must aggregate bit-identically to one uninterrupted run.
  const auto db = make_db();
  const auto drc = make_drc();

  RunnerConfig config;
  config.replications = 4;
  config.jobs = 1;
  Runner full_runner(config);
  add_policy_grid(full_runner, db, drc);
  const std::vector<CellResult> full = full_runner.run();

  SessionControl control;
  control.checkpoint_path = path("grid.clrdb");
  control.checkpoint_every = 1;
  control.resume = true;
  control.step_budget = 3;

  RunnerConfig wide = config;
  wide.jobs = 8;
  Runner first(wide);
  add_policy_grid(first, db, drc);
  RunnerOutcome out = run_runner_session(first, control);
  EXPECT_FALSE(out.run.complete);

  control.step_budget = 0;
  Runner second(config);
  add_policy_grid(second, db, drc);
  const RunnerOutcome resumed = run_runner_session(second, control);
  ASSERT_TRUE(resumed.run.complete);
  EXPECT_TRUE(resumed.resumed);
  expect_results_equal(full, resumed.run.results);
}

TEST(Session, GridHashTracksPolicyAndPrefetchOnlyWhenActive) {
  // Mirror of the fleet param-hash rule at the Runner-grid layer: a prefetch
  // toggle or an MDP-knob change on an MDP cell must fence a checkpoint,
  // while MDP knobs on non-MDP cells stay hash-invisible — so every pre-PR
  // grid checkpoint keeps loading against the identical grid.
  const auto db = make_db();
  const auto drc = make_drc();

  RunnerConfig config;
  config.replications = 3;

  auto hash_with = [&](auto mutate) {
    Runner runner(config);
    for (const PolicyKind kind : {PolicyKind::Baseline, PolicyKind::Ura}) {
      RunnerCell cell;
      cell.db = &db;
      cell.drc = &drc;
      cell.ranges = make_ranges();
      cell.params.kind = kind;
      cell.params.sim.total_cycles = 2e4;
      cell.seed = 7;
      mutate(cell);
      runner.add_cell(cell);
    }
    return runner.grid_hash();
  };

  const std::uint64_t base = hash_with([](RunnerCell&) {});
  EXPECT_EQ(base, hash_with([](RunnerCell& cell) {
              // Inactive knobs: MDP planning parameters under non-MDP policies.
              cell.params.mdp.gamma = 0.5;
              cell.params.mdp.makespan_bins = 3;
              cell.params.prefetch_params.min_observations = 99;
            }));
  EXPECT_NE(base, hash_with([](RunnerCell& cell) { cell.params.prefetch = true; }));

  const std::uint64_t mdp =
      hash_with([](RunnerCell& cell) { cell.params.kind = PolicyKind::Mdp; });
  EXPECT_NE(base, mdp);
  EXPECT_NE(mdp, hash_with([](RunnerCell& cell) {
              cell.params.kind = PolicyKind::Mdp;
              cell.params.mdp.gamma = 0.5;
            }));
}

TEST_F(SessionTempDir, ExternalStopIsForwardedAndReported) {
  const auto db = make_db();
  const auto drc = make_drc();
  RunnerConfig config;
  config.replications = 3;
  config.jobs = 1;
  Runner runner(config);
  add_grid(runner, db, drc);

  util::StopSource source;
  source.request_stop(util::StopReason::Signal);
  SessionControl control;
  control.stop = source.token();
  control.checkpoint_path = path("grid.clrdb");
  const RunnerOutcome out = run_runner_session(runner, control);
  EXPECT_FALSE(out.run.complete);
  EXPECT_EQ(out.stop_reason, util::StopReason::Signal);
}

}  // namespace
}  // namespace clr::exp
