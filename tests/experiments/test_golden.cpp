// Golden regression tests: exact pinned values for the schedule/reliability
// metric pipeline (Sapp / Fapp / Japp / Wapp, the Table-2 per-task bundle)
// on one tiny fixed application and configuration. The tracer instruments
// exactly these hot paths; these literals make a silent numeric drift in a
// "performance-neutral" refactor a loud test failure instead.
//
// The pinned chromosome is problem.random_genes(Rng(7)) for the 6-task app
// with seed 42, spelled out literally so the test does not depend on the
// random-genes draw order. If a deliberate model change moves these values,
// re-capture them with a %.17g print and update the literals in one commit
// with the model change.

#include <gtest/gtest.h>

#include "dse/mapping_problem.hpp"
#include "experiments/app.hpp"
#include "experiments/flow.hpp"
#include "schedule/scheduler.hpp"

namespace clr::exp {
namespace {

class GoldenSchedule : public ::testing::Test {
 protected:
  GoldenSchedule()
      : app_(make_synthetic_app(6, 42)),
        problem_(app_->context(), dse::QosSpec{1e9, 0.0}, dse::ObjectiveMode::EnergyQos) {}

  sched::ScheduleResult evaluate() const {
    const std::vector<int> genes{3, 0, 6, 5, 1, 0, 47, 5, 2, 0, 43, 3,
                                 1, 0, 47, 1, 4, 0, 49, 1, 3, 0, 2,  0};
    return sched::ListScheduler{}.run(app_->context(), problem_.decode(genes));
  }

  std::unique_ptr<AppInstance> app_;
  dse::MappingProblem problem_;
};

TEST_F(GoldenSchedule, ApplicationMetricsAreExact) {
  const auto res = evaluate();
  EXPECT_DOUBLE_EQ(res.makespan, 155.97094771512113);      // Sapp (Eq. 1)
  EXPECT_DOUBLE_EQ(res.func_rel, 0.99759311712513665);     // Fapp (Eq. 2)
  EXPECT_DOUBLE_EQ(res.energy, 478.59789316039718);        // Japp (Eq. 3)
  EXPECT_DOUBLE_EQ(res.peak_power, 6.2743007359690264);    // Wapp
  EXPECT_DOUBLE_EQ(res.system_mttf, 25632.587574607835);
}

TEST_F(GoldenSchedule, TaskWindowsAreExact) {
  const auto res = evaluate();
  ASSERT_EQ(res.tasks.size(), 6u);
  EXPECT_DOUBLE_EQ(res.tasks.front().start, 0.0);
  EXPECT_DOUBLE_EQ(res.tasks.front().end, 19.538159423485002);
  EXPECT_DOUBLE_EQ(res.tasks.back().start, 136.00635193706029);
  EXPECT_DOUBLE_EQ(res.tasks.back().end, 154.23815673589002);
}

TEST_F(GoldenSchedule, Table2BundleOfTaskZeroIsExact) {
  const auto res = evaluate();
  const auto& m = res.tasks[0].metrics;
  EXPECT_DOUBLE_EQ(m.min_ext, 19.267441685971907);
  EXPECT_DOUBLE_EQ(m.avg_ext, 19.538159423485002);
  EXPECT_DOUBLE_EQ(m.err_prob, 0.0056549654298288198);
  EXPECT_DOUBLE_EQ(m.mttf, 2293827.8216240308);
  EXPECT_DOUBLE_EQ(m.avg_power, 1.1828919278778716);
  EXPECT_DOUBLE_EQ(m.eta, 2579401.8261115714);
}

TEST(GoldenRuntime, FoldedReconfigAccountingIsExactAfterTheStallSplit) {
  // ISSUE 10 satellite: reconfig_stall_time was split out of the previously
  // folded reconfiguration accounting. This pins the OLD folded sum (and the
  // fields derived from it) as exact literals on a fixed fixture, so the
  // split provably re-derives — not re-defines — the historical quantity:
  // with prefetch off, stall must carry the identical bits.
  dse::DesignDb db;
  auto add = [&](double s, double f, double j, int tag) {
    dse::DesignPoint p;
    p.makespan = s;
    p.func_rel = f;
    p.energy = j;
    p.config.tasks.resize(1);
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(100, 0.95, 50, 0);
  add(120, 0.99, 80, 1);
  add(80, 0.92, 30, 2);
  const rt::DrcMatrix drc(3, {0, 10, 2, 10, 0, 10, 2, 10, 0});
  dse::MetricRanges ranges;
  ranges.makespan_min = 80.0;
  ranges.makespan_max = 120.0;
  ranges.func_rel_min = 0.92;
  ranges.func_rel_max = 0.99;
  ranges.energy_min = 30.0;
  ranges.energy_max = 80.0;

  RuntimeEvalParams params;
  params.kind = PolicyKind::Ura;
  params.p_rc = 0.3;
  params.sim.total_cycles = 2e4;
  const rt::RuntimeStats s = evaluate_policy_with(db, drc, ranges, params, 42);

  EXPECT_DOUBLE_EQ(s.total_reconfig_cost, 130.0);
  EXPECT_DOUBLE_EQ(s.avg_reconfig_cost, 0.67010309278350511);
  EXPECT_EQ(s.num_reconfigs, 57u);
  // The split re-derives the folded sum bit-for-bit.
  EXPECT_EQ(s.reconfig_stall_time, s.total_reconfig_cost);
  EXPECT_EQ(s.prefetch_hidden_time, 0.0);
  EXPECT_DOUBLE_EQ(s.service_availability, 0.99350000000000005);
}

TEST_F(GoldenSchedule, ScheduleStructurallyValid) {
  // The pinned values only matter if the schedule itself is well-formed.
  const std::vector<int> genes{3, 0, 6, 5, 1, 0, 47, 5, 2, 0, 43, 3,
                               1, 0, 47, 1, 4, 0, 49, 1, 3, 0, 2,  0};
  const auto cfg = problem_.decode(genes);
  const auto res = sched::ListScheduler{}.run(app_->context(), cfg);
  EXPECT_EQ(sched::validate_schedule(app_->context(), cfg, res), "");
}

}  // namespace
}  // namespace clr::exp
