// Satellite of the tracing tentpole: the tracer only observes. A traced
// exp::Runner grid must produce bit-for-bit the results of an untraced one,
// at any worker count — tracing draws nothing from any Rng, reorders no
// work, and grid reports (modulo wall-clock fields) stay byte-identical.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "experiments/runner.hpp"
#include "trace/trace.hpp"

namespace clr::exp {
namespace {

dse::DesignDb make_db() {
  dse::DesignDb db;
  auto add = [&](double s, double f, double j, int tag) {
    dse::DesignPoint p;
    p.makespan = s;
    p.func_rel = f;
    p.energy = j;
    p.config.tasks.resize(1);
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(100, 0.95, 50, 0);
  add(120, 0.99, 80, 1);
  add(80, 0.92, 30, 2);
  return db;
}

rt::DrcMatrix make_drc() {
  return rt::DrcMatrix(3, {0, 10, 2,
                           10, 0, 10,
                           2, 10, 0});
}

dse::MetricRanges make_ranges() {
  dse::MetricRanges r;
  r.makespan_min = 80.0;
  r.makespan_max = 120.0;
  r.func_rel_min = 0.92;
  r.func_rel_max = 0.99;
  r.energy_min = 30.0;
  r.energy_max = 80.0;
  return r;
}

struct GridOutput {
  std::vector<CellResult> results;
  std::string report;  ///< grid_report JSON with wall-clock fields zeroed
};

/// Run the smoke grid (one fault-free cell, one cell with transient +
/// permanent faults) with tracing on or off.
GridOutput run_grid(const dse::DesignDb& db, const rt::DrcMatrix& drc, std::size_t jobs,
                    bool traced) {
  auto& tracer = trace::Tracer::instance();
  if (traced) {
    tracer.enable();
  } else {
    tracer.disable();
  }

  RunnerConfig config;
  config.replications = 3;
  config.jobs = jobs;
  config.keep_runs = true;
  Runner runner(config);

  RunnerCell clean;
  clean.db = &db;
  clean.drc = &drc;
  clean.ranges = make_ranges();
  clean.params.kind = PolicyKind::Ura;
  clean.params.p_rc = 0.5;
  clean.params.sim.total_cycles = 2e4;
  clean.seed = 111;
  clean.label = "clean";
  runner.add_cell(clean);

  RunnerCell faulted = clean;
  faulted.params.kind = PolicyKind::Aura;
  faulted.params.faults.transient_rate = 5e-4;
  faulted.params.faults.pe_mtbf = 4e4;
  faulted.seed = 222;
  faulted.label = "faulted";
  runner.add_cell(faulted);

  GridOutput out;
  out.results = runner.run();

  if (traced) {
    tracer.disable();
    tracer.clear();
  }

  // wall_ms is the one legitimately non-deterministic field; metrics carry
  // timers; the report header echoes the worker count. Normalize all three,
  // then the report must be byte-identical.
  for (auto& res : out.results) res.wall_ms = 0.0;
  RunnerConfig canonical = config;
  canonical.jobs = 0;
  out.report = grid_report("trace-determinism", canonical, out.results, nullptr).dump(0);
  return out;
}

void expect_identical(const GridOutput& a, const GridOutput& b, const char* what) {
  ASSERT_EQ(a.results.size(), b.results.size()) << what;
  for (std::size_t c = 0; c < a.results.size(); ++c) {
    ASSERT_EQ(a.results[c].runs.size(), b.results[c].runs.size()) << what;
    for (std::size_t r = 0; r < a.results[c].runs.size(); ++r) {
      const auto& x = a.results[c].runs[r];
      const auto& y = b.results[c].runs[r];
      EXPECT_EQ(x.num_events, y.num_events) << what << " cell " << c << " rep " << r;
      EXPECT_EQ(x.num_reconfigs, y.num_reconfigs) << what;
      EXPECT_EQ(x.num_infeasible_events, y.num_infeasible_events) << what;
      EXPECT_EQ(x.num_transient_faults, y.num_transient_faults) << what;
      EXPECT_EQ(x.num_permanent_faults, y.num_permanent_faults) << what;
      EXPECT_EQ(x.num_unrecovered_failures, y.num_unrecovered_failures) << what;
      EXPECT_EQ(x.num_evacuations, y.num_evacuations) << what;
      EXPECT_EQ(x.num_safe_mode_entries, y.num_safe_mode_entries) << what;
      EXPECT_EQ(x.avg_energy, y.avg_energy) << what;
      EXPECT_EQ(x.total_reconfig_cost, y.total_reconfig_cost) << what;
      EXPECT_EQ(x.max_drc, y.max_drc) << what;
      EXPECT_EQ(x.qos_violation_time, y.qos_violation_time) << what;
      EXPECT_EQ(x.downtime, y.downtime) << what;
      EXPECT_EQ(x.availability, y.availability) << what;
      EXPECT_EQ(x.mttr, y.mttr) << what;
    }
  }
  EXPECT_EQ(a.report, b.report) << what << ": grid reports must be byte-identical";
}

TEST(TraceDeterminism, TracedRunsAreBitIdenticalToUntracedAtAnyJobCount) {
  const auto db = make_db();
  const auto drc = make_drc();
  const auto untraced1 = run_grid(db, drc, 1, false);
  const auto traced1 = run_grid(db, drc, 1, true);
  const auto untraced8 = run_grid(db, drc, 8, false);
  const auto traced8 = run_grid(db, drc, 8, true);
  expect_identical(untraced1, traced1, "jobs=1 traced vs untraced");
  expect_identical(untraced1, untraced8, "untraced jobs=1 vs jobs=8");
  expect_identical(untraced1, traced8, "jobs=8 traced vs untraced jobs=1");
}

TEST(TraceDeterminism, TracedRunActuallyRecordsSpans) {
  // Guard against the vacuous pass: the traced grid above must really have
  // been recording (cell spans + runtime instants), otherwise the bit-for-bit
  // comparison proves nothing.
  const auto db = make_db();
  const auto drc = make_drc();
  auto& tracer = trace::Tracer::instance();
  tracer.clear();
  tracer.enable();
  RunnerConfig config;
  config.replications = 2;
  config.jobs = 2;
  Runner runner(config);
  RunnerCell cell;
  cell.db = &db;
  cell.drc = &drc;
  cell.ranges = make_ranges();
  cell.params.kind = PolicyKind::Ura;
  cell.params.p_rc = 0.5;
  cell.params.sim.total_cycles = 1e4;
  cell.params.faults.transient_rate = 5e-4;
  cell.seed = 42;
  runner.add_cell(cell);
  runner.run();
  tracer.disable();

  bool saw_cell = false, saw_run = false, saw_qos = false;
  for (const auto& ev : tracer.collect()) {
    if (ev.name == "exp.cell") saw_cell = true;
    if (ev.name == "rt.run") saw_run = true;
    if (ev.name == "rt.qos_event") saw_qos = true;
  }
  tracer.clear();
  EXPECT_TRUE(saw_cell);
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_qos);
}

}  // namespace
}  // namespace clr::exp
