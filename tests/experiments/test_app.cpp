#include "experiments/app.hpp"

#include <gtest/gtest.h>

namespace clr::exp {
namespace {

TEST(MakeSyntheticApp, BuildsConsistentContext) {
  const auto app = make_synthetic_app(25, 1);
  EXPECT_EQ(app->graph().num_tasks(), 25u);
  EXPECT_NO_THROW(app->context().check());
  EXPECT_EQ(app->context().graph, &app->graph());
  EXPECT_EQ(app->context().impls->num_tasks(), 25u);
}

TEST(MakeSyntheticApp, DeterministicPerSeed) {
  const auto a = make_synthetic_app(30, 99);
  const auto b = make_synthetic_app(30, 99);
  ASSERT_EQ(a->graph().num_edges(), b->graph().num_edges());
  for (tg::EdgeId e = 0; e < a->graph().num_edges(); ++e) {
    EXPECT_EQ(a->graph().edge(e).src, b->graph().edge(e).src);
    EXPECT_EQ(a->graph().edge(e).dst, b->graph().edge(e).dst);
  }
  for (tg::TaskId t = 0; t < 30; ++t) {
    ASSERT_EQ(a->impls().for_task(t).size(), b->impls().for_task(t).size());
    for (std::size_t i = 0; i < a->impls().for_task(t).size(); ++i) {
      EXPECT_DOUBLE_EQ(a->impls().for_task(t)[i].base_time, b->impls().for_task(t)[i].base_time);
    }
  }
}

TEST(MakeSyntheticApp, SeedsChangeTheApplication) {
  const auto a = make_synthetic_app(30, 1);
  const auto b = make_synthetic_app(30, 2);
  bool differs = a->graph().num_edges() != b->graph().num_edges();
  if (!differs) {
    for (tg::EdgeId e = 0; e < a->graph().num_edges() && !differs; ++e) {
      differs = a->graph().edge(e).dst != b->graph().edge(e).dst;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(MakeSyntheticApp, GranularitySelectsClrSpace) {
  const auto hw_only = make_synthetic_app(10, 3, rel::ClrGranularity::HwOnly);
  const auto full = make_synthetic_app(10, 3, rel::ClrGranularity::Full);
  EXPECT_LT(hw_only->clr_space().size(), full->clr_space().size());
}

TEST(MakeJpegApp, UsesTheFig2bGraph) {
  const auto app = make_jpeg_app(5);
  EXPECT_EQ(app->graph().num_tasks(), 11u);
  EXPECT_EQ(app->graph().num_edges(), 13u);
  EXPECT_NO_THROW(app->context().check());
}

TEST(DeriveSeed, StableAndDistinct) {
  EXPECT_EQ(derive_seed(1, 10), derive_seed(1, 10));
  EXPECT_NE(derive_seed(1, 10), derive_seed(1, 20));
  EXPECT_NE(derive_seed(1, 10), derive_seed(2, 10));
}

}  // namespace
}  // namespace clr::exp
