// Randomized property tests for the run-time fault injector (many derived
// seeds per property) plus exact golden values for recovery_probability on
// representative CLR configurations. Complements test_fault_model.cpp, which
// checks single hand-picked cases.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "faults/fault_model.hpp"
#include "reliability/clr_config.hpp"
#include "reliability/techniques.hpp"

namespace clr::flt {
namespace {

FaultParams mixed_params() {
  FaultParams p;
  p.transient_rate = 2e-3;
  p.pe_mtbf = 5e3;
  return p;
}

std::vector<FaultEvent> drain(FaultInjector& inj, double horizon) {
  std::vector<FaultEvent> events;
  while (inj.next_time() <= horizon) events.push_back(inj.pop());
  return events;
}

TEST(FaultInjectorProperty, TimelineNondecreasingForManySeeds) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    FaultInjector inj(mixed_params(), uniform_profiles(4), util::SplitMix64(seed).next());
    double prev = 0.0;
    std::size_t n = 0;
    while (inj.next_time() < 2e4) {
      const FaultEvent fe = inj.pop();
      EXPECT_GE(fe.time, prev) << "seed " << seed << " event " << n;
      EXPECT_LT(fe.pe, 4u) << "seed " << seed;
      prev = fe.time;
      ++n;
    }
    EXPECT_GT(n, 0u) << "seed " << seed << ": horizon long enough to see faults";
  }
}

TEST(FaultInjectorProperty, SameSeedReproducesTheExactTimeline) {
  for (std::uint64_t seed = 50; seed < 60; ++seed) {
    FaultInjector a(mixed_params(), uniform_profiles(3), seed);
    FaultInjector b(mixed_params(), uniform_profiles(3), seed);
    const auto ea = drain(a, 1e4);
    const auto eb = drain(b, 1e4);
    ASSERT_EQ(ea.size(), eb.size()) << "seed " << seed;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].time, eb[i].time) << "seed " << seed << " event " << i;
      EXPECT_EQ(ea[i].pe, eb[i].pe) << "seed " << seed << " event " << i;
      EXPECT_EQ(ea[i].kind, eb[i].kind) << "seed " << seed << " event " << i;
    }
  }
}

TEST(FaultInjectorProperty, DifferentSeedsDiverge) {
  // Not a hard guarantee for any single pair, so check across a batch: at
  // least 9 of 10 seed pairs must produce different first-event times.
  std::size_t differing = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    FaultInjector a(mixed_params(), uniform_profiles(3), 1000 + seed);
    FaultInjector b(mixed_params(), uniform_profiles(3), 2000 + seed);
    if (a.next_time() != b.next_time()) ++differing;
  }
  EXPECT_GE(differing, 9u);
}

TEST(FaultInjectorProperty, PermanentFaultPermanentlySilencesThePe) {
  for (std::uint64_t seed = 7; seed < 15; ++seed) {
    FaultParams p = mixed_params();
    p.pe_mtbf = 1e3;  // die early so every PE's death lands in the horizon
    FaultInjector inj(p, uniform_profiles(3), seed);
    std::vector<bool> dead(3, false);
    while (inj.next_time() < std::numeric_limits<double>::infinity()) {
      const FaultEvent fe = inj.pop();
      EXPECT_FALSE(dead[fe.pe]) << "seed " << seed << ": event on retired PE " << fe.pe;
      if (fe.kind == FaultKind::Permanent) dead[fe.pe] = true;
    }
    for (std::size_t pe = 0; pe < 3; ++pe) EXPECT_TRUE(dead[pe]) << "seed " << seed;
  }
}

TEST(FaultInjectorProperty, TransientCountTracksTheConfiguredRate) {
  // With rate r per PE per cycle over horizon T and n PEs (no permanents),
  // the expected transient count is r*T*n; a 25k-cycle run should land
  // within ±25% for every seed in the batch.
  FaultParams p;
  p.transient_rate = 2e-3;
  const double horizon = 25e3;
  const double expected = p.transient_rate * horizon * 2;
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    FaultInjector inj(p, uniform_profiles(2), util::SplitMix64(seed).next());
    const auto events = drain(inj, horizon);
    EXPECT_GT(static_cast<double>(events.size()), 0.75 * expected) << "seed " << seed;
    EXPECT_LT(static_cast<double>(events.size()), 1.25 * expected) << "seed " << seed;
  }
}

// Exact golden values for the recovery chain (captured from the model; see
// tests/experiments/test_golden.cpp for the re-capture recipe). Unprotected
// tasks recover nothing; each layer contributes per its traits table.
TEST(RecoveryProbabilityGolden, PinnedConfigurations) {
  using rel::AswTechnique;
  using rel::HwTechnique;
  using rel::SswTechnique;
  const rel::ClrConfig unprotected{};
  const rel::ClrConfig full{HwTechnique::PartialTmr, SswTechnique::Checkpoint,
                            AswTechnique::Hamming, 2};
  const rel::ClrConfig retry{HwTechnique::None, SswTechnique::Retry, AswTechnique::Hamming, 3};
  const rel::ClrConfig hw_only{HwTechnique::Hardening, SswTechnique::None, AswTechnique::None,
                               0};
  const rel::ClrConfig asw_only{HwTechnique::None, SswTechnique::None,
                                AswTechnique::CodeTripling, 0};
  EXPECT_DOUBLE_EQ(recovery_probability(unprotected), 0.0);
  EXPECT_DOUBLE_EQ(recovery_probability(full), 0.99760000000000004);
  EXPECT_DOUBLE_EQ(recovery_probability(retry), 0.96999999999999997);
  EXPECT_DOUBLE_EQ(recovery_probability(hw_only), 0.69999999999999996);
  EXPECT_DOUBLE_EQ(recovery_probability(asw_only), 0.94999999999999996);
}

TEST(RecoveryProbabilityGolden, AlwaysAValidProbability) {
  // Sweep the full enumerated space: the chain must stay inside [0, 1].
  const rel::ClrSpace space(rel::ClrGranularity::Full);
  for (std::size_t i = 0; i < space.size(); ++i) {
    const double p = recovery_probability(space.config(i));
    EXPECT_GE(p, 0.0) << "config " << i;
    EXPECT_LE(p, 1.0) << "config " << i;
    EXPECT_FALSE(std::isnan(p)) << "config " << i;
  }
}

}  // namespace
}  // namespace clr::flt
