// Unit tests for the run-time fault-injection subsystem: parameter
// validation, the CLR recovery chain, platform-health bookkeeping and the
// deterministic merged fault timeline.

#include "faults/fault_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "reliability/techniques.hpp"

namespace clr::flt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

dse::DesignPoint make_point(std::vector<plat::PeId> pes, double makespan = 10.0,
                            double func_rel = 0.99, double energy = 5.0) {
  dse::DesignPoint p;
  for (std::size_t t = 0; t < pes.size(); ++t) {
    sched::TaskAssignment a;
    a.pe = pes[t];
    a.priority = static_cast<std::int32_t>(t);  // distinct configs for dedup
    p.config.tasks.push_back(a);
  }
  p.makespan = makespan;
  p.func_rel = func_rel;
  p.energy = energy;
  return p;
}

dse::DesignDb make_db() {
  dse::DesignDb db;
  db.add(make_point({0, 0}));        // point 0: PE 0 only
  db.add(make_point({1, 1}, 12.0));  // point 1: PE 1 only
  db.add(make_point({0, 1}, 14.0));  // point 2: PEs 0 and 1
  return db;
}

TEST(FaultParams, ValidateAcceptsDefaultsAndRejectsOutOfRange) {
  FaultParams ok;
  EXPECT_NO_THROW(ok.validate());
  EXPECT_FALSE(ok.enabled());
  ok.transient_rate = 1e-4;
  EXPECT_TRUE(ok.enabled());

  FaultParams bad = ok;
  bad.transient_rate = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.pe_mtbf = -5.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.qos_tolerance = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.fallback_coverage = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.recovery_latency = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(RecoveryProbability, UnprotectedConfigRecoversNothing) {
  rel::ClrConfig cfg;  // HW/SSW/ASW all None
  EXPECT_DOUBLE_EQ(recovery_probability(cfg), 1.0 - rel::hw_traits(rel::HwTechnique::None).residual);
}

TEST(RecoveryProbability, FollowsTheMaskingChain) {
  rel::ClrConfig cfg;
  cfg.hw = rel::HwTechnique::Hardening;
  cfg.asw = rel::AswTechnique::Hamming;
  cfg.ssw = rel::SswTechnique::Retry;
  const auto& hw = rel::hw_traits(cfg.hw);
  const auto& asw = rel::asw_traits(cfg.asw);
  const double expected =
      (1.0 - hw.residual) +
      hw.residual * (asw.correct_coverage + (asw.detect_coverage - asw.correct_coverage));
  EXPECT_DOUBLE_EQ(recovery_probability(cfg), expected);

  // Without SSW the detected-but-uncorrected share is lost.
  cfg.ssw = rel::SswTechnique::None;
  const double no_reexec = (1.0 - hw.residual) + hw.residual * asw.correct_coverage;
  EXPECT_DOUBLE_EQ(recovery_probability(cfg), no_reexec);
  EXPECT_LT(recovery_probability(cfg), expected);
}

TEST(PlatformHealth, KillPeRetiresDependentPoints) {
  const auto db = make_db();
  PlatformHealth health(db, 2);
  EXPECT_EQ(health.num_alive_pes(), 2u);
  EXPECT_EQ(health.num_alive_points(), 3u);
  EXPECT_TRUE(health.all_pes_alive());

  health.kill_pe(0);
  EXPECT_FALSE(health.pe_alive(0));
  EXPECT_TRUE(health.pe_alive(1));
  EXPECT_EQ(health.num_alive_pes(), 1u);
  EXPECT_FALSE(health.point_alive(0));  // on PE 0
  EXPECT_TRUE(health.point_alive(1));   // on PE 1 only
  EXPECT_FALSE(health.point_alive(2));  // spans both
  EXPECT_EQ(health.num_alive_points(), 1u);
  EXPECT_EQ(health.point_mask(), (std::vector<bool>{false, true, false}));

  // Idempotent: killing again changes nothing.
  health.kill_pe(0);
  EXPECT_EQ(health.num_alive_pes(), 1u);
  EXPECT_EQ(health.num_alive_points(), 1u);

  health.kill_pe(1);
  EXPECT_EQ(health.num_alive_points(), 0u);
}

TEST(PlatformHealth, RejectsPointsBeyondThePlatform) {
  const auto db = make_db();  // references PE 1
  EXPECT_THROW(PlatformHealth(db, 1), std::invalid_argument);
}

TEST(FaultInjector, AllRatesZeroMeansNoEvents) {
  FaultParams params;  // both rates 0
  FaultInjector injector(params, uniform_profiles(2), 42);
  EXPECT_EQ(injector.next_time(), kInf);
  EXPECT_THROW(injector.pop(), std::logic_error);
}

TEST(FaultInjector, SameSeedSameTimeline) {
  FaultParams params;
  params.transient_rate = 1e-3;
  params.pe_mtbf = 5e3;
  for (int trial = 0; trial < 2; ++trial) {
    FaultInjector a(params, uniform_profiles(3), 7);
    FaultInjector b(params, uniform_profiles(3), 7);
    for (int i = 0; i < 50 && a.next_time() < kInf; ++i) {
      const auto ea = a.pop();
      const auto eb = b.pop();
      EXPECT_EQ(ea.time, eb.time);
      EXPECT_EQ(ea.pe, eb.pe);
      EXPECT_EQ(ea.kind, eb.kind);
    }
  }
  FaultInjector a(params, uniform_profiles(3), 7);
  FaultInjector c(params, uniform_profiles(3), 8);
  EXPECT_NE(a.next_time(), c.next_time());
}

TEST(FaultInjector, TimesAreNondecreasingAndPermanentsFireOnce) {
  FaultParams params;
  params.transient_rate = 2e-3;
  params.pe_mtbf = 2e3;
  FaultInjector injector(params, uniform_profiles(4), 11);
  double last = 0.0;
  std::vector<int> deaths(4, 0);
  std::vector<bool> dead(4, false);
  for (int i = 0; i < 500 && injector.next_time() < kInf; ++i) {
    const auto ev = injector.pop();
    EXPECT_GE(ev.time, last);
    last = ev.time;
    if (ev.kind == FaultKind::Permanent) {
      ++deaths[ev.pe];
      dead[ev.pe] = true;
    } else {
      // A dead PE emits no further soft errors.
      EXPECT_FALSE(dead[ev.pe]);
    }
  }
  for (int d : deaths) EXPECT_EQ(d, 1);  // every PE wears out exactly once
}

TEST(FaultInjector, SerScaleZeroSilencesAPe) {
  FaultParams params;
  params.transient_rate = 1e-2;
  std::vector<PeFaultProfile> profiles = uniform_profiles(2);
  profiles[1].ser_scale = 0.0;
  FaultInjector injector(params, profiles, 3);
  for (int i = 0; i < 200; ++i) {
    const auto ev = injector.pop();
    EXPECT_EQ(ev.pe, 0u);
  }
}

TEST(Weibull, ScaleMatchesMeanAndSamplesConcentrate) {
  // Shape 1 degenerates to the exponential: scale == mean.
  EXPECT_NEAR(FaultInjector::weibull_scale_for_mean(1000.0, 1.0), 1000.0, 1e-9);
  EXPECT_THROW(FaultInjector::weibull_scale_for_mean(0.0, 2.0), std::invalid_argument);

  const double shape = 2.0, mean = 500.0;
  const double scale = FaultInjector::weibull_scale_for_mean(mean, shape);
  util::Rng rng(99);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += FaultInjector::sample_weibull(rng, shape, scale);
  EXPECT_NEAR(sum / n, mean, 0.05 * mean);
}

TEST(Profiles, PlatformProfilesCarryAvfAndAging) {
  const auto platform = plat::make_default_hmpsoc();
  const auto profiles = profiles_from_platform(platform);
  ASSERT_EQ(profiles.size(), platform.num_pes());
  for (std::size_t pe = 0; pe < profiles.size(); ++pe) {
    const auto& type = platform.pe_type(platform.pes()[pe].type);
    EXPECT_DOUBLE_EQ(profiles[pe].ser_scale, type.avf);
    EXPECT_DOUBLE_EQ(profiles[pe].weibull_shape, type.beta_aging);
  }
}

}  // namespace
}  // namespace clr::flt
