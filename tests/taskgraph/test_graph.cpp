#include "taskgraph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "taskgraph/generator.hpp"

namespace clr::tg {
namespace {

TaskGraph make_diamond() {
  // 0 -> {1, 2} -> 3
  TaskGraph g;
  g.add_task(0, 1.0, "a");
  g.add_task(1, 1.0, "b");
  g.add_task(1, 1.0, "c");
  g.add_task(2, 1.0, "d");
  g.add_edge(0, 1, 1.0, 100);
  g.add_edge(0, 2, 2.0, 200);
  g.add_edge(1, 3, 3.0, 300);
  g.add_edge(2, 3, 4.0, 400);
  return g;
}

TEST(TaskGraph, AddTaskAssignsDenseIds) {
  TaskGraph g;
  EXPECT_EQ(g.add_task(0), 0u);
  EXPECT_EQ(g.add_task(1), 1u);
  EXPECT_EQ(g.num_tasks(), 2u);
}

TEST(TaskGraph, AddEdgeValidation) {
  TaskGraph g;
  g.add_task(0);
  g.add_task(0);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), std::invalid_argument);  // self-loop
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
  EXPECT_NO_THROW(g.add_edge(0, 1, 0.0));
}

TEST(TaskGraph, RejectsNegativeCriticality) {
  TaskGraph g;
  EXPECT_THROW(g.add_task(0, -1.0), std::invalid_argument);
}

TEST(TaskGraph, SuccessorsAndPredecessors) {
  const TaskGraph g = make_diamond();
  auto succ = g.successors(0);
  std::sort(succ.begin(), succ.end());
  EXPECT_EQ(succ, (std::vector<TaskId>{1, 2}));
  auto pred = g.predecessors(3);
  std::sort(pred.begin(), pred.end());
  EXPECT_EQ(pred, (std::vector<TaskId>{1, 2}));
  EXPECT_TRUE(g.predecessors(0).empty());
  EXPECT_TRUE(g.successors(3).empty());
}

TEST(TaskGraph, AcyclicDetection) {
  TaskGraph g;
  g.add_task(0);
  g.add_task(0);
  g.add_task(0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  EXPECT_TRUE(g.is_acyclic());
  g.add_edge(2, 0, 1.0);  // close the cycle
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_THROW(g.topological_order(), std::logic_error);
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const TaskGraph g = make_diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& e : g.edges()) EXPECT_LT(pos[e.src], pos[e.dst]);
}

TEST(TaskGraph, NormalizedCriticalitySumsToOne) {
  TaskGraph g;
  g.add_task(0, 1.0);
  g.add_task(0, 3.0);
  g.add_task(0, 4.0);
  double sum = 0.0;
  for (TaskId t = 0; t < g.num_tasks(); ++t) sum += g.normalized_criticality(t);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(g.normalized_criticality(1), 3.0 / 8.0, 1e-12);
}

TEST(TaskGraph, NormalizedCriticalityAllZeroFallsBackToUniform) {
  TaskGraph g;
  g.add_task(0, 0.0);
  g.add_task(0, 0.0);
  EXPECT_NEAR(g.normalized_criticality(0), 0.5, 1e-12);
}

TEST(TaskGraph, CriticalPathOfChain) {
  TaskGraph g;
  g.add_task(0);
  g.add_task(0);
  g.add_task(0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(g.critical_path_length({2.0, 3.0, 4.0}), 9.0);
}

TEST(TaskGraph, CriticalPathOfDiamondTakesLongerBranch) {
  const TaskGraph g = make_diamond();
  // branch via 1: 1+5+1 = 7; via 2: 1+2+1 = 4 (costs below).
  EXPECT_DOUBLE_EQ(g.critical_path_length({1.0, 5.0, 2.0, 1.0}), 7.0);
}

TEST(TaskGraph, CriticalPathRejectsWrongSize) {
  const TaskGraph g = make_diamond();
  EXPECT_THROW(g.critical_path_length({1.0}), std::invalid_argument);
}

TEST(TaskGraph, SourcesAndSinks) {
  const TaskGraph g = make_diamond();
  EXPECT_EQ(g.sources(), std::vector<TaskId>{0});
  EXPECT_EQ(g.sinks(), std::vector<TaskId>{3});
}

TEST(JpegGraph, MatchesFig2b) {
  const TaskGraph g = make_jpeg_encoder_graph();
  EXPECT_EQ(g.num_tasks(), 11u);  // paper: 11 tasks
  EXPECT_EQ(g.num_edges(), 13u);  // paper: 13 edges
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.task(g.sources().front()).name, "S");
  EXPECT_EQ(g.task(g.sinks().front()).name, "Z");
  EXPECT_GT(g.period(), 0.0);
}

}  // namespace
}  // namespace clr::tg
