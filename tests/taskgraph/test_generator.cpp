#include "taskgraph/generator.hpp"

#include <gtest/gtest.h>

namespace clr::tg {
namespace {

/// Property sweep over the application sizes the paper evaluates (10..100)
/// plus edge sizes.
class GeneratorSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeneratorSweep, ProducesExactTaskCount) {
  GeneratorParams p;
  p.num_tasks = GetParam();
  util::Rng rng(1000 + GetParam());
  const TaskGraph g = TgffGenerator(p).generate(rng);
  EXPECT_EQ(g.num_tasks(), p.num_tasks);
}

TEST_P(GeneratorSweep, ProducesAcyclicGraph) {
  GeneratorParams p;
  p.num_tasks = GetParam();
  util::Rng rng(2000 + GetParam());
  const TaskGraph g = TgffGenerator(p).generate(rng);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_NO_THROW(g.topological_order());
}

TEST_P(GeneratorSweep, GraphIsConnectedFromSources) {
  GeneratorParams p;
  p.num_tasks = GetParam();
  util::Rng rng(3000 + GetParam());
  const TaskGraph g = TgffGenerator(p).generate(rng);
  // Every non-source task has at least one predecessor; with the growth
  // construction every task is reachable from the root.
  std::size_t with_preds = 0;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!g.predecessors(t).empty()) ++with_preds;
  }
  EXPECT_EQ(with_preds + g.sources().size(), g.num_tasks());
  if (g.num_tasks() > 1) EXPECT_LT(g.sources().size(), g.num_tasks());
}

TEST_P(GeneratorSweep, RespectsOutDegreeCap) {
  GeneratorParams p;
  p.num_tasks = GetParam();
  p.max_out_degree = 3;
  util::Rng rng(4000 + GetParam());
  const TaskGraph g = TgffGenerator(p).generate(rng);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_LE(g.out_edges(t).size(), p.max_out_degree);
  }
}

TEST_P(GeneratorSweep, EdgeAttributesWithinRanges) {
  GeneratorParams p;
  p.num_tasks = GetParam();
  util::Rng rng(5000 + GetParam());
  const TaskGraph g = TgffGenerator(p).generate(rng);
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.comm_time, p.comm_time_min);
    EXPECT_LE(e.comm_time, p.comm_time_max);
    EXPECT_GE(e.data_bytes, p.data_bytes_min);
    EXPECT_LE(e.data_bytes, p.data_bytes_max);
  }
}

TEST_P(GeneratorSweep, TaskTypesWithinRange) {
  GeneratorParams p;
  p.num_tasks = GetParam();
  p.num_task_types = 6;
  util::Rng rng(6000 + GetParam());
  const TaskGraph g = TgffGenerator(p).generate(rng);
  for (const auto& t : g.tasks()) {
    EXPECT_LT(t.type, p.num_task_types);
    EXPECT_GE(t.criticality, p.criticality_min);
    EXPECT_LE(t.criticality, p.criticality_max);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, GeneratorSweep,
                         ::testing::Values(1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100));

TEST(TgffGenerator, DeterministicPerSeed) {
  GeneratorParams p;
  p.num_tasks = 30;
  util::Rng a(99), b(99);
  const TaskGraph ga = TgffGenerator(p).generate(a);
  const TaskGraph gb = TgffGenerator(p).generate(b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (EdgeId e = 0; e < ga.num_edges(); ++e) {
    EXPECT_EQ(ga.edge(e).src, gb.edge(e).src);
    EXPECT_EQ(ga.edge(e).dst, gb.edge(e).dst);
    EXPECT_DOUBLE_EQ(ga.edge(e).comm_time, gb.edge(e).comm_time);
  }
}

TEST(TgffGenerator, DifferentSeedsProduceDifferentGraphs) {
  GeneratorParams p;
  p.num_tasks = 30;
  util::Rng a(1), b(2);
  const TaskGraph ga = TgffGenerator(p).generate(a);
  const TaskGraph gb = TgffGenerator(p).generate(b);
  bool differs = ga.num_edges() != gb.num_edges();
  if (!differs) {
    for (EdgeId e = 0; e < ga.num_edges(); ++e) {
      if (ga.edge(e).src != gb.edge(e).src || ga.edge(e).dst != gb.edge(e).dst) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(TgffGenerator, RejectsBadParams) {
  util::Rng rng(1);
  GeneratorParams p;
  p.num_tasks = 0;
  EXPECT_THROW(TgffGenerator(p).generate(rng), std::invalid_argument);
  p.num_tasks = 5;
  p.num_task_types = 0;
  EXPECT_THROW(TgffGenerator(p).generate(rng), std::invalid_argument);
  p.num_task_types = 3;
  p.comm_time_min = 5.0;
  p.comm_time_max = 1.0;
  EXPECT_THROW(TgffGenerator(p).generate(rng), std::invalid_argument);
}

TEST(TgffGenerator, SingleTaskGraph) {
  GeneratorParams p;
  p.num_tasks = 1;
  util::Rng rng(7);
  const TaskGraph g = TgffGenerator(p).generate(rng);
  EXPECT_EQ(g.num_tasks(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace clr::tg
