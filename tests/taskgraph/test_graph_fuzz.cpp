// Generator fuzzing + CompiledGraph topology round-trips (ISSUE 5, DESIGN.md
// §5.9). Part 1 checks the TGFF-style generator's structural guarantees over
// seeded random parameter sweeps: exact task count, acyclic, weakly
// connected, degree limits respected, attribute values inside the configured
// ranges and depth bounded by the task count. Part 2 checks that the flat
// CSR topology inside sched::CompiledGraph round-trips the pointer-based
// TaskGraph exactly — successor/predecessor sets in edge-insertion order,
// aligned communication times and an identical Kahn topological order — for
// degenerate shapes (single task, chain, fork-join, zero-cost edges) and for
// generated graphs.

#include "taskgraph/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "platform/platform.hpp"
#include "reliability/clr_config.hpp"
#include "reliability/implementation.hpp"
#include "reliability/metrics.hpp"
#include "schedule/compiled_graph.hpp"
#include "taskgraph/graph.hpp"

namespace clr::tg {
namespace {

/// Undirected (weak) connectivity via BFS over both edge directions.
bool weakly_connected(const TaskGraph& g) {
  if (g.num_tasks() == 0) return true;
  std::vector<char> seen(g.num_tasks(), 0);
  std::vector<TaskId> queue{0};
  seen[0] = 1;
  while (!queue.empty()) {
    const TaskId t = queue.back();
    queue.pop_back();
    for (EdgeId e : g.out_edges(t)) {
      const TaskId d = g.edge(e).dst;
      if (!seen[d]) seen[d] = 1, queue.push_back(d);
    }
    for (EdgeId e : g.in_edges(t)) {
      const TaskId s = g.edge(e).src;
      if (!seen[s]) seen[s] = 1, queue.push_back(s);
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](char c) { return c != 0; });
}

/// Longest path in edges (depth); graphs from the generator must fit inside
/// num_tasks - 1 by acyclicity.
std::size_t depth_of(const TaskGraph& g) {
  std::vector<std::size_t> depth(g.num_tasks(), 0);
  std::size_t best = 0;
  for (TaskId t : g.topological_order()) {
    for (EdgeId e : g.out_edges(t)) {
      const TaskId d = g.edge(e).dst;
      depth[d] = std::max(depth[d], depth[t] + 1);
      best = std::max(best, depth[d]);
    }
  }
  return best;
}

TEST(GeneratorFuzz, StructuralInvariantsOverParameterSweep) {
  for (std::size_t i = 0; i < 200; ++i) {
    GeneratorParams p;
    p.num_tasks = 1 + (i * 7) % 64;
    p.num_task_types = 1 + i % 10;
    p.max_out_degree = 1 + i % 6;
    p.max_in_degree = 2 + i % 4;
    p.fan_in_prob = 0.1 * static_cast<double>(i % 10);
    p.comm_time_min = 0.0;  // exercise 0-cost edges
    p.comm_time_max = 0.5 + static_cast<double>(i % 8);
    p.criticality_min = 0.25;
    p.criticality_max = 3.0;
    util::Rng rng(0x6F22u + i);
    const TaskGraph g = TgffGenerator(p).generate(rng);
    SCOPED_TRACE(::testing::Message() << "sweep case " << i);

    EXPECT_EQ(g.num_tasks(), p.num_tasks);
    EXPECT_TRUE(g.is_acyclic());
    EXPECT_TRUE(weakly_connected(g));
    EXPECT_LT(depth_of(g), p.num_tasks == 1 ? 1 : p.num_tasks);

    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      EXPECT_LE(g.out_edges(t).size(), p.max_out_degree) << "task " << t;
      EXPECT_LE(g.in_edges(t).size(), p.max_in_degree) << "task " << t;
      EXPECT_GE(g.task(t).criticality, p.criticality_min);
      EXPECT_LE(g.task(t).criticality, p.criticality_max);
      EXPECT_EQ(g.task(t).id, t);
      EXPECT_LT(g.task(t).type, p.num_task_types);
    }
    for (const Edge& e : g.edges()) {
      EXPECT_GE(e.comm_time, p.comm_time_min);
      EXPECT_LE(e.comm_time, p.comm_time_max);
      EXPECT_GE(e.data_bytes, p.data_bytes_min);
      EXPECT_LE(e.data_bytes, p.data_bytes_max);
      EXPECT_NE(e.src, e.dst);
      EXPECT_LT(e.src, g.num_tasks());
      EXPECT_LT(e.dst, g.num_tasks());
    }
    // Topological order is a permutation respecting every edge.
    const auto order = g.topological_order();
    ASSERT_EQ(order.size(), g.num_tasks());
    std::vector<std::size_t> pos(g.num_tasks());
    for (std::size_t k = 0; k < order.size(); ++k) pos[order[k]] = k;
    for (const Edge& e : g.edges()) EXPECT_LT(pos[e.src], pos[e.dst]);
  }
}

/// Minimal single-PE context so a CompiledGraph can be built around an
/// arbitrary graph: one GP type, one implementation per task, HwOnly space.
class RoundTripFixture {
 public:
  explicit RoundTripFixture(TaskGraph graph) : graph_(std::move(graph)) {
    plat::PeType t;
    t.kind = plat::PeKind::GeneralPurpose;
    const auto tid = hw_.add_pe_type(t);
    hw_.add_pe(tid);
    hw_.add_pe(tid);
    impls_.resize(graph_.num_tasks());
    for (TaskId id = 0; id < graph_.num_tasks(); ++id) {
      rel::Implementation impl;
      impl.pe_type = tid;
      impl.base_time = 5.0 + id;
      impls_.add(id, impl);
    }
    ctx_.graph = &graph_;
    ctx_.platform = &hw_;
    ctx_.impls = &impls_;
    ctx_.clr_space = &clr_;
  }

  const sched::EvalContext& context() const { return ctx_; }
  const TaskGraph& graph() const { return graph_; }

 private:
  TaskGraph graph_;
  plat::Platform hw_;
  rel::ImplementationSet impls_;
  rel::ClrSpace clr_{rel::ClrGranularity::HwOnly};
  sched::EvalContext ctx_;
};

void expect_round_trip(const TaskGraph& g, const sched::CompiledGraph& cg) {
  ASSERT_EQ(cg.num_tasks(), g.num_tasks());
  ASSERT_EQ(cg.num_edges(), g.num_edges());

  const auto order = g.topological_order();
  const auto flat_order = cg.topo_order();
  ASSERT_EQ(flat_order.size(), order.size());
  for (std::size_t k = 0; k < order.size(); ++k) EXPECT_EQ(flat_order[k], order[k]);

  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    SCOPED_TRACE(::testing::Message() << "task " << t);
    const auto succ = cg.successors(t);
    const auto succ_comm = cg.successor_comm(t);
    const auto& out = g.out_edges(t);
    ASSERT_EQ(succ.size(), out.size());
    ASSERT_EQ(succ_comm.size(), out.size());
    for (std::size_t k = 0; k < out.size(); ++k) {
      EXPECT_EQ(succ[k], g.edge(out[k]).dst);
      EXPECT_EQ(succ_comm[k], g.edge(out[k]).comm_time);
    }
    const auto pred = cg.predecessors(t);
    const auto pred_comm = cg.predecessor_comm(t);
    const auto& in = g.in_edges(t);
    ASSERT_EQ(pred.size(), in.size());
    ASSERT_EQ(pred_comm.size(), in.size());
    for (std::size_t k = 0; k < in.size(); ++k) {
      EXPECT_EQ(pred[k], g.edge(in[k]).src);
      EXPECT_EQ(pred_comm[k], g.edge(in[k]).comm_time);
    }
    EXPECT_EQ(cg.normalized_criticality(t), g.normalized_criticality(t));
  }
}

TEST(CompiledGraphRoundTrip, SingleTask) {
  TaskGraph g;
  g.add_task(0, 1.0);
  RoundTripFixture fx(std::move(g));
  expect_round_trip(fx.graph(), sched::CompiledGraph(fx.context()));
}

TEST(CompiledGraphRoundTrip, Chain) {
  TaskGraph g;
  for (int i = 0; i < 12; ++i) g.add_task(0, 1.0 + i);
  for (TaskId t = 0; t + 1 < 12; ++t) g.add_edge(t, t + 1, 1.5 * t, 64);
  RoundTripFixture fx(std::move(g));
  expect_round_trip(fx.graph(), sched::CompiledGraph(fx.context()));
}

TEST(CompiledGraphRoundTrip, ForkJoin) {
  TaskGraph g;
  const TaskId src = g.add_task(0);
  std::vector<TaskId> mid;
  for (int i = 0; i < 5; ++i) mid.push_back(g.add_task(1));
  const TaskId sink = g.add_task(2);
  for (TaskId m : mid) {
    g.add_edge(src, m, 2.0, 128);
    g.add_edge(m, sink, 3.0, 256);
  }
  RoundTripFixture fx(std::move(g));
  expect_round_trip(fx.graph(), sched::CompiledGraph(fx.context()));
}

TEST(CompiledGraphRoundTrip, ZeroCostEdges) {
  TaskGraph g;
  const TaskId a = g.add_task(0);
  const TaskId b = g.add_task(0);
  const TaskId c = g.add_task(0);
  g.add_edge(a, b, 0.0, 0);
  g.add_edge(a, c, 0.0, 0);
  g.add_edge(b, c, 0.0, 0);
  RoundTripFixture fx(std::move(g));
  expect_round_trip(fx.graph(), sched::CompiledGraph(fx.context()));
}

TEST(CompiledGraphRoundTrip, GeneratedGraphs) {
  for (std::size_t i = 0; i < 60; ++i) {
    GeneratorParams p;
    p.num_tasks = 1 + (i * 5) % 48;
    p.max_out_degree = 2 + i % 5;
    p.max_in_degree = 2 + i % 3;
    p.fan_in_prob = 0.35;
    p.comm_time_min = 0.0;
    util::Rng rng(0xC5A0u + i);
    SCOPED_TRACE(::testing::Message() << "generated case " << i);
    RoundTripFixture fx(TgffGenerator(p).generate(rng));
    expect_round_trip(fx.graph(), sched::CompiledGraph(fx.context()));
  }
}

}  // namespace
}  // namespace clr::tg
