#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace clr::util {
namespace {

TEST(ResolveThreads, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(ThreadPool, SizeCountsTheCaller) {
  EXPECT_EQ(ThreadPool(1).size(), 1u);
  EXPECT_EQ(ThreadPool(4).size(), 4u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroIterationsIsANoop) {
  ThreadPool pool(3);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, SlotWritesNeedNoSynchronization) {
  // The engines' usage pattern: iteration i writes only slot i.
  ThreadPool pool(4);
  std::vector<std::size_t> out(5000, 0);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.parallel_for(100, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 5000u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 42) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(10, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10u);
}

TEST(ThreadPool, ExceptionPropagatesInline) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(3,
                                 [&](std::size_t i) {
                                   if (i == 1) throw std::invalid_argument("bad");
                                 }),
               std::invalid_argument);
}

TEST(ThreadPool, ManyConcurrentThrowsSurfaceExactlyOneExceptionPerJob) {
  // A job throwing mid-batch must not deadlock the pool, and the caller must
  // see the failure exactly once per parallel_for — even when many workers
  // throw concurrently — with no stale exception leaking into later jobs.
  ThreadPool pool(4);
  int caught = 0;
  for (int round = 0; round < 5; ++round) {
    try {
      pool.parallel_for(2000, [&](std::size_t i) {
        if (i % 7 == 3) throw std::runtime_error("boom");
      });
      FAIL() << "round " << round << " did not propagate the job exception";
    } catch (const std::runtime_error&) {
      ++caught;
    }
    // Immediately reusable, and the previous round's error must not resurface.
    std::atomic<std::size_t> ran{0};
    pool.parallel_for(64, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 64u) << "round " << round;
  }
  EXPECT_EQ(caught, 5);
}

// --- Cooperative stop (DESIGN.md §5.12) ---

TEST(ThreadPoolStop, PreStoppedTokenRunsNothing) {
  StopSource source;
  source.request_stop();
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(1000, [&](std::size_t) { ran.fetch_add(1); }, source.token());
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ThreadPoolStop, DefaultTokenNeverStops) {
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(500, [&](std::size_t) { ran.fetch_add(1); }, StopToken{});
  EXPECT_EQ(ran.load(), 500u);
}

TEST(ThreadPoolStop, ExecutedSetIsAContiguousIndexPrefix) {
  // The stop check precedes each index claim and every claimed index runs to
  // completion, so the executed set is exactly [0, k) for some k — the
  // invariant Runner::run relies on for accurate done-flags in checkpoints.
  StopSource source;
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<std::uint8_t>> executed(kN);
  pool.parallel_for(
      kN,
      [&](std::size_t i) {
        executed[i].store(1, std::memory_order_relaxed);
        if (i == 257) source.request_stop();
      },
      source.token());
  std::size_t count = 0;
  std::size_t highest = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    if (executed[i].load(std::memory_order_relaxed) != 0) {
      ++count;
      highest = i;
    }
  }
  ASSERT_GT(count, 0u);
  EXPECT_EQ(highest + 1, count) << "executed indices must form a gap-free prefix";
  EXPECT_LT(count, kN) << "the stop request must actually cut the run short";
}

TEST(ThreadPoolStop, InlinePathChecksPerIteration) {
  StopSource source;
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(
      100,
      [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
        if (i == 4) source.request_stop();
      },
      source.token());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace clr::util
