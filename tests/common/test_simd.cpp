// common/simd.hpp contract test: every backend op must reproduce its scalar
// reference *bitwise*, element-wise, on the full cross product of IEEE-754
// edge values — denormals, ±0.0, infinities, NaN, and magnitude boundaries.
// The comparison is on raw bit patterns (std::bit_cast), not operator==:
// the batched kernel's determinism proof (DESIGN.md §5.10) leans on the shim
// performing exactly the scalar kernel's operations, including which operand
// an x86 min/max returns on equal or unordered inputs. Both sides execute on
// the same hardware in the same rounding mode, so even NaN payload
// propagation must agree. The CI leg built with -DCLR_FORCE_SCALAR=ON runs
// this same suite against the scalar fallback backend.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/simd.hpp"

namespace clr {
namespace {

using limits = std::numeric_limits<double>;

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Edge values: signed zeros, smallest/largest denormals, normal boundaries,
/// exact and inexact-sum magnitudes, infinities, quiet NaNs of both signs.
std::vector<double> edge_values() {
  return {
      +0.0,
      -0.0,
      limits::denorm_min(),
      -limits::denorm_min(),
      limits::min() - limits::denorm_min(),  // largest denormal
      limits::min(),
      -limits::min(),
      1.0,
      -1.0,
      1.0 + limits::epsilon(),
      0.1,  // repeating binary fraction
      -0.1,
      3.5e15,  // sums with 1.0 round
      limits::max(),
      -limits::max(),
      limits::infinity(),
      -limits::infinity(),
      limits::quiet_NaN(),
      -limits::quiet_NaN(),
  };
}

using ScalarOp = double (*)(double, double);
using VecOp = simd::VecD (*)(simd::VecD, simd::VecD);

struct NamedOp {
  const char* name;
  ScalarOp scalar;
  VecOp vec;
  /// Commutative IEEE arithmetic: when BOTH operands are NaN, which payload
  /// propagates depends on the operand order the compiler happened to emit
  /// (add/mul are commutative instructions), so only NaN-ness is required
  /// there. Everywhere else — including a single NaN operand — the result
  /// bits are fully determined and checked exactly. min/max are asymmetric
  /// (the shim's operand swap is the point), so they stay strict throughout.
  bool relax_double_nan;
};

const NamedOp kOps[] = {
    {"add", simd::scalar_ref::add, simd::add, true},
    {"sub", simd::scalar_ref::sub, simd::sub, true},
    {"mul", simd::scalar_ref::mul, simd::mul, true},
    {"div", simd::scalar_ref::div, simd::div, true},
    {"max", simd::scalar_ref::max, simd::max, false},
    {"min", simd::scalar_ref::min, simd::min, false},
};

TEST(SimdShim, EveryOpMatchesScalarRefBitwiseOnEdgeValues) {
  const std::vector<double> vals = edge_values();
  // All (a, b) pairs, packed kWidth pairs per vector op so neighboring lanes
  // carry unrelated data (catches any cross-lane contamination).
  std::vector<double> as, bs;
  for (const double a : vals) {
    for (const double b : vals) {
      as.push_back(a);
      bs.push_back(b);
    }
  }
  while (as.size() % simd::kWidth != 0) {  // pad with a benign pair
    as.push_back(1.0);
    bs.push_back(2.0);
  }

  for (const NamedOp& op : kOps) {
    for (std::size_t i = 0; i < as.size(); i += simd::kWidth) {
      alignas(32) double out[simd::kWidth];
      simd::store(out, op.vec(simd::load(as.data() + i), simd::load(bs.data() + i)));
      for (std::size_t l = 0; l < simd::kWidth; ++l) {
        const double want = op.scalar(as[i + l], bs[i + l]);
        if (op.relax_double_nan && std::isnan(as[i + l]) && std::isnan(bs[i + l])) {
          EXPECT_TRUE(std::isnan(out[l])) << op.name << " on two NaNs (lane " << l << ")";
          continue;
        }
        EXPECT_EQ(bits(want), bits(out[l]))
            << op.name << "(" << as[i + l] << ", " << bs[i + l] << ") = " << out[l]
            << ", scalar_ref = " << want << " (backend " << simd::kBackend << ", lane " << l
            << ")";
      }
    }
  }
}

// min/max tie-breaking is part of the contract: on equal inputs (including
// ±0.0, which compare equal) the result must be the FIRST argument, exactly
// like std::max(a, b) = (a < b) ? b : a — x86 maxpd/minpd return their
// second operand there, which is why the shim swaps operands.
TEST(SimdShim, MinMaxReturnFirstArgumentOnTiesAndUnordered) {
  const double cases[][2] = {
      {+0.0, -0.0},
      {-0.0, +0.0},
      {1.0, 1.0},
      {limits::quiet_NaN(), 1.0},
      {1.0, limits::quiet_NaN()},
      {limits::quiet_NaN(), limits::quiet_NaN()},
  };
  for (const auto& c : cases) {
    alignas(32) double a[simd::kWidth], b[simd::kWidth], mx[simd::kWidth], mn[simd::kWidth];
    for (std::size_t l = 0; l < simd::kWidth; ++l) {
      a[l] = c[0];
      b[l] = c[1];
    }
    simd::store(mx, simd::max(simd::load(a), simd::load(b)));
    simd::store(mn, simd::min(simd::load(a), simd::load(b)));
    for (std::size_t l = 0; l < simd::kWidth; ++l) {
      EXPECT_EQ(bits(simd::scalar_ref::max(c[0], c[1])), bits(mx[l])) << c[0] << " vs " << c[1];
      EXPECT_EQ(bits(simd::scalar_ref::min(c[0], c[1])), bits(mn[l])) << c[0] << " vs " << c[1];
    }
  }
}

TEST(SimdShim, LoadStoreSet1RoundTripPreservesBits) {
  const std::vector<double> vals = edge_values();
  for (const double x : vals) {
    alignas(32) double in[simd::kWidth], out[simd::kWidth];
    for (std::size_t l = 0; l < simd::kWidth; ++l) in[l] = x;
    simd::store(out, simd::load(in));
    for (std::size_t l = 0; l < simd::kWidth; ++l) EXPECT_EQ(bits(x), bits(out[l]));
    simd::store(out, simd::set1(x));
    for (std::size_t l = 0; l < simd::kWidth; ++l) EXPECT_EQ(bits(x), bits(out[l]));
  }
}

// kLanes of the batch layout must be a multiple of every backend's width —
// the property that makes block composition independent of the dispatcher.
TEST(SimdShim, WidthDividesEight) {
  EXPECT_EQ(8u % simd::kWidth, 0u) << "backend " << simd::kBackend;
}

}  // namespace
}  // namespace clr
