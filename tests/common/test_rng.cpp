#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace clr::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, ZeroSeedProducesNonZeroStream) {
  SplitMix64 a(0);
  bool any_nonzero = false;
  for (int i = 0; i < 10; ++i) any_nonzero |= (a.next() != 0);
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ForkDivergesFromParent) {
  Rng a(7);
  Rng child = a.fork();
  // The child must not replay the parent's stream.
  Rng reference(7);
  reference.engine()();  // consume the value used to seed the fork
  bool differs = false;
  for (int i = 0; i < 32; ++i) {
    if (child.uniform() != reference.uniform()) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Rng, IndexThrowsOnZero) {
  Rng rng(5);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, UniformRealWithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanApproximatesMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential_mean(100.0);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Rng, ExponentialMeanRejectsNonPositive) {
  Rng rng(17);
  EXPECT_THROW(rng.exponential_mean(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential_mean(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  Rng rng(29);
  std::vector<int> v(20);
  for (int i = 0; i < 20; ++i) v[i] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // 20! permutations; staying identical is ~impossible
}

TEST(Rng, PickReturnsElementOfVector) {
  Rng rng(31);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

// --- Stream state save/restore (checkpoint/resume, DESIGN.md §5.12) ---

TEST(SplitMix64, StateRoundTripsBitExactly) {
  SplitMix64 a(0xFEEDFACECAFEBEEFULL);
  for (int i = 0; i < 17; ++i) a.next();
  // Re-seeding from the exposed state continues the exact sequence.
  SplitMix64 b(a.state());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngState, SaveRestoreContinuesTheStreamBitExactly) {
  Rng a(12345);
  for (int i = 0; i < 37; ++i) a.uniform();
  const std::string saved = a.save_state();

  // Drive the original forward and record the tail...
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 64; ++i) expected.push_back(a.engine()());

  // ...then restore a DIFFERENTLY seeded generator and replay it.
  Rng b(999);
  b.restore_state(saved);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(b.engine()(), expected[static_cast<std::size_t>(i)]);
}

TEST(RngState, RestoredStreamMatchesAcrossDistributionHelpers) {
  Rng a(7);
  for (int i = 0; i < 10; ++i) a.normal(0.0, 1.0);
  const std::string saved = a.save_state();
  Rng b(7);
  b.restore_state(saved);
  // The helpers construct their std:: distributions per call (stateless), so
  // engine equality implies identical draws through every helper.
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
    EXPECT_DOUBLE_EQ(a.normal(5.0, 2.0), b.normal(5.0, 2.0));
  }
}

TEST(RngState, SaveIsLocaleIndependentText) {
  Rng a(42);
  const std::string saved = a.save_state();
  // The classic-locale stream must not contain grouping separators.
  EXPECT_EQ(saved.find(','), std::string::npos);
  Rng b(1);
  b.restore_state(saved);
  EXPECT_EQ(a.engine()(), b.engine()());
}

TEST(RngState, MalformedStateIsRejected) {
  Rng rng(1);
  EXPECT_THROW(rng.restore_state("not an engine state"), std::invalid_argument);
  EXPECT_THROW(rng.restore_state(""), std::invalid_argument);
}

}  // namespace
}  // namespace clr::util
