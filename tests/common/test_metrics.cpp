#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace clr::util {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kAdds = 10000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::size_t i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kAdds);
}

TEST(Timer, AccumulatesSpansAndCounts) {
  Timer t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_DOUBLE_EQ(t.total_ms(), 0.0);
  t.add_ns(1'500'000);  // 1.5 ms
  t.add_ns(500'000);    // 0.5 ms
  EXPECT_EQ(t.count(), 2u);
  EXPECT_DOUBLE_EQ(t.total_ms(), 2.0);
}

TEST(Timer, ScopeRecordsOneSpan) {
  Timer t;
  {
    Timer::Scope span(t);
  }
  EXPECT_EQ(t.count(), 1u);
  EXPECT_GE(t.total_ms(), 0.0);
}

TEST(MetricsRegistry, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("jobs");
  a.add(3);
  EXPECT_EQ(registry.counter("jobs").value(), 3u);
  Timer& ta = registry.timer("build");
  ta.add_ns(1000);
  EXPECT_EQ(registry.timer("build").count(), 1u);
}

TEST(MetricsRegistry, SnapshotsAreSortedByName) {
  MetricsRegistry registry;
  registry.counter("zebra").add(1);
  registry.counter("alpha").add(2);
  const auto counters = registry.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "alpha");
  EXPECT_EQ(counters[0].value, 2u);
  EXPECT_EQ(counters[1].name, "zebra");
  EXPECT_EQ(counters[1].value, 1u);
}

TEST(MetricsRegistry, ToStringMentionsEveryMetric) {
  MetricsRegistry registry;
  registry.counter("runner.jobs").add(7);
  registry.timer("runner.cell").add_ns(2'000'000);
  const std::string s = registry.to_string();
  EXPECT_NE(s.find("runner.jobs=7"), std::string::npos);
  EXPECT_NE(s.find("runner.cell"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentMixedIncrementsAreLossless) {
  // Counters and timers hammered from many threads at once — the relaxed
  // atomics must lose nothing and the registry must not race (run under
  // TSan by the thread-sanitize CI job).
  MetricsRegistry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 2000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        registry.counter("mixed.count").add(2);
        registry.timer("mixed.time").add_ns(10);
        registry.counter("mixed.per_thread." + std::to_string(t % 2)).add();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(registry.counter("mixed.count").value(), kThreads * kIters * 2);
  EXPECT_EQ(registry.timer("mixed.time").count(), kThreads * kIters);
  EXPECT_DOUBLE_EQ(registry.timer("mixed.time").total_ms(),
                   static_cast<double>(kThreads * kIters * 10) / 1e6);
  EXPECT_EQ(registry.counter("mixed.per_thread.0").value() +
                registry.counter("mixed.per_thread.1").value(),
            kThreads * kIters);
}

TEST(MetricsRegistry, ConcurrentResolutionIsSafe) {
  MetricsRegistry registry;
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      for (std::size_t i = 0; i < 1000; ++i) registry.counter("shared").add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(registry.counter("shared").value(), kThreads * 1000);
}

}  // namespace
}  // namespace clr::util
