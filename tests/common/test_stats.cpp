#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace clr::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats a, b, combined;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3.0;
    a.add(x);
    combined.add(x);
  }
  for (int i = 0; i < 70; ++i) {
    const double x = i * -0.3 + 11.0;
    b.add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  RunningStats c;
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.mean(), mean_before);
}

TEST(Percentile, KnownQuantiles) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.125), 1.5);  // interpolated
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.3), 7.0);
}

TEST(Percentile, Errors) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.1), std::invalid_argument);
}

TEST(MinMaxNorm, Basics) {
  EXPECT_DOUBLE_EQ(min_max_norm(5.0, 0.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(min_max_norm(0.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(min_max_norm(10.0, 0.0, 10.0), 1.0);
}

TEST(MinMaxNorm, ClampsOutOfRange) {
  EXPECT_DOUBLE_EQ(min_max_norm(-1.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(min_max_norm(11.0, 0.0, 10.0), 1.0);
}

TEST(MinMaxNorm, DegenerateRangeIsZero) {
  // Algorithm 1 convention: a single-candidate feasible set is not penalized.
  EXPECT_DOUBLE_EQ(min_max_norm(5.0, 5.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(min_max_norm(5.0, 6.0, 5.0), 0.0);
}

TEST(Histogram, BinsAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(10.0);  // out of range, dropped
  h.add(-0.1);  // out of range, dropped
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(Histogram, TracksOutOfRangeMass) {
  Histogram h(0.0, 10.0, 5);
  h.add(5.0);
  EXPECT_EQ(h.out_of_range(), 0u);
  h.add(10.0);  // hi is exclusive
  h.add(-0.1);
  h.add(1e9);
  EXPECT_EQ(h.out_of_range(), 3u);
  // total() still counts only binned mass; observed() counts everything seen.
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.observed(), 4u);
}

TEST(StudentT95, KnownCriticalValues) {
  EXPECT_NEAR(student_t_95(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_95(4), 2.776, 1e-3);
  EXPECT_NEAR(student_t_95(10), 2.228, 1e-3);
  EXPECT_NEAR(student_t_95(30), 2.042, 1e-3);
  EXPECT_NEAR(student_t_95(1000), 1.960, 1e-3);  // normal limit
  EXPECT_TRUE(std::isinf(student_t_95(0)));
}

TEST(Summarize, ComputesConfidenceInterval) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  const Summary sum = summarize(s);
  EXPECT_EQ(sum.count, 8u);
  EXPECT_DOUBLE_EQ(sum.mean, 5.0);
  EXPECT_DOUBLE_EQ(sum.min, 2.0);
  EXPECT_DOUBLE_EQ(sum.max, 9.0);
  const double stddev = std::sqrt(32.0 / 7.0);
  EXPECT_NEAR(sum.stddev, stddev, 1e-12);
  // ci95 = t(n-1) * s / sqrt(n) with t(7) = 2.365.
  EXPECT_NEAR(sum.ci95, 2.365 * stddev / std::sqrt(8.0), 1e-9);
}

TEST(Summarize, DegenerateCases) {
  RunningStats empty;
  const Summary e = summarize(empty);
  EXPECT_EQ(e.count, 0u);
  EXPECT_DOUBLE_EQ(e.ci95, 0.0);

  RunningStats one;
  one.add(3.0);
  const Summary o = summarize(one);
  EXPECT_EQ(o.count, 1u);
  EXPECT_DOUBLE_EQ(o.mean, 3.0);
  EXPECT_DOUBLE_EQ(o.ci95, 0.0);  // no interval from a single sample
}

TEST(Summarize, SingleReplicationIsNanFree) {
  // The replicated harness accepts --replications 1; every Summary field
  // must stay finite (stddev/ci95 collapse to 0, min == mean == max).
  RunningStats one;
  one.add(42.5);
  const Summary s = summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 42.5);
  EXPECT_DOUBLE_EQ(s.max, 42.5);
  for (double v : {s.mean, s.stddev, s.ci95, s.min, s.max}) {
    EXPECT_FALSE(std::isnan(v));
    EXPECT_FALSE(std::isinf(v));
  }
}

TEST(StudentT95, SmallSampleEdgeCases) {
  // df = 0 (one replication): no interval exists — the sentinel is +inf,
  // and summarize() must never multiply by it (ci95 stays 0 for n = 1).
  EXPECT_TRUE(std::isinf(student_t_95(0)));
  EXPECT_NEAR(student_t_95(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_95(2), 4.303, 1e-3);
  EXPECT_NEAR(student_t_95(3), 3.182, 1e-3);
  // Monotone decreasing in df, approaching the normal 1.96 from above.
  double prev = student_t_95(1);
  for (std::size_t df = 2; df <= 200; ++df) {
    const double t = student_t_95(df);
    EXPECT_LE(t, prev + 1e-12) << "df " << df;
    EXPECT_GT(t, 1.959) << "df " << df;
    prev = t;
  }
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace clr::util
