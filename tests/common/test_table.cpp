#include "common/table.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace clr::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t("title");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("| a | bb |"), std::string::npos);
  EXPECT_NE(s.find("| 1 | 2  |"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t;
  t.set_header({"x", "y", "z"});
  t.add_row({"only"});
  const std::string s = t.to_string();
  // Row renders with empty padded cells and consistent rule width.
  const auto first_rule = s.find('+');
  ASSERT_NE(first_rule, std::string::npos);
  // All lines have equal length.
  std::size_t prev_len = 0;
  std::size_t start = 0;
  bool first = true;
  while (start < s.size()) {
    const auto end = s.find('\n', start);
    const std::size_t len = end - start;
    if (!first) EXPECT_EQ(len, prev_len);
    prev_len = len;
    first = false;
    start = end + 1;
  }
}

TEST(TextTable, ColumnWidthFollowsWidestCell) {
  TextTable t;
  t.set_header({"h"});
  t.add_row({"wide-cell"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| h         |"), std::string::npos);
}

TEST(TextTable, FmtFixedPrecision) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::fmt(-0.5, 1), "-0.5");
}

TEST(TextTable, CsvEscaping) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTable, CsvOmitsTitle) {
  TextTable t("the title");
  t.set_header({"a"});
  t.add_row({"1"});
  EXPECT_EQ(t.to_csv().find("the title"), std::string::npos);
}

TEST(WriteFile, RoundTrips) {
  const auto path = std::filesystem::temp_directory_path() / "clr_table_test.txt";
  write_file(path.string(), "hello\n");
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "hello");
  std::filesystem::remove(path);
}

TEST(WriteFile, ThrowsOnBadPath) {
  EXPECT_THROW(write_file("/nonexistent-dir-xyz/file.txt", "x"), std::runtime_error);
}

}  // namespace
}  // namespace clr::util
