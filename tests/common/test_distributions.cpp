#include "common/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace clr::util {
namespace {

TEST(BivariateGaussian, RejectsBadParameters) {
  EXPECT_THROW(BivariateGaussian(0, 0, 0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(BivariateGaussian(0, 0, 1.0, -1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(BivariateGaussian(0, 0, 1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BivariateGaussian(0, 0, 1.0, 1.0, -1.0), std::invalid_argument);
  EXPECT_NO_THROW(BivariateGaussian(0, 0, 1.0, 1.0, 0.99));
}

TEST(BivariateGaussian, MarginalMoments) {
  BivariateGaussian d(10.0, -5.0, 2.0, 3.0, 0.5);
  Rng rng(101);
  double sx = 0, sy = 0, sx2 = 0, sy2 = 0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const auto [x, y] = d.sample(rng);
    sx += x;
    sy += y;
    sx2 += x * x;
    sy2 += y * y;
  }
  EXPECT_NEAR(sx / n, 10.0, 0.05);
  EXPECT_NEAR(sy / n, -5.0, 0.07);
  EXPECT_NEAR(sx2 / n - (sx / n) * (sx / n), 4.0, 0.15);
  EXPECT_NEAR(sy2 / n - (sy / n) * (sy / n), 9.0, 0.3);
}

class BivariateCorrelationTest : public ::testing::TestWithParam<double> {};

TEST_P(BivariateCorrelationTest, EmpiricalCorrelationMatchesRho) {
  const double rho = GetParam();
  BivariateGaussian d(0.0, 0.0, 1.0, 1.0, rho);
  Rng rng(202);
  double sx = 0, sy = 0, sxy = 0, sx2 = 0, sy2 = 0;
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    const auto [x, y] = d.sample(rng);
    sx += x;
    sy += y;
    sxy += x * y;
    sx2 += x * x;
    sy2 += y * y;
  }
  const double mx = sx / n, my = sy / n;
  const double cov = sxy / n - mx * my;
  const double vx = sx2 / n - mx * mx;
  const double vy = sy2 / n - my * my;
  EXPECT_NEAR(cov / std::sqrt(vx * vy), rho, 0.02);
}

INSTANTIATE_TEST_SUITE_P(RhoSweep, BivariateCorrelationTest,
                         ::testing::Values(-0.8, -0.3, 0.0, 0.3, 0.8));

TEST(ClampedNormal, SamplesWithinBounds) {
  ClampedNormal d(0.0, 10.0, -1.0, 1.0);
  Rng rng(303);
  for (int i = 0; i < 5000; ++i) {
    const double v = d.sample(rng);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(ClampedNormal, TightDistributionRarelyClamps) {
  ClampedNormal d(0.5, 0.01, 0.0, 1.0);
  Rng rng(404);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(ClampedNormal, RejectsBadBounds) {
  EXPECT_THROW(ClampedNormal(0, 1, 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ClampedNormal(0, 0.0, 0.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace clr::util
