// Cross-validation of the analytical Table 2/3 models against Monte-Carlo
// fault injection: the central correctness argument for the metric models.

#include "sim/fault_injection.hpp"

#include <gtest/gtest.h>

#include "experiments/app.hpp"
#include "dse/mapping_problem.hpp"

namespace clr::sim {
namespace {

/// Shared app + a fixed random configuration.
class InjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = exp::make_synthetic_app(12, 0xFA57);
    problem_ = std::make_unique<dse::MappingProblem>(app_->context(), dse::QosSpec{1e9, 0.0},
                                                     dse::ObjectiveMode::EnergyQos);
    util::Rng rng(5);
    cfg_ = problem_->decode(problem_->random_genes(rng));
  }

  std::unique_ptr<exp::AppInstance> app_;
  std::unique_ptr<dse::MappingProblem> problem_;
  sched::Configuration cfg_;
};

TEST_F(InjectionTest, ZeroFaultRateMatchesAnalyticalExactly) {
  sched::EvalContext ctx = app_->context();
  ctx.metrics = rel::MetricsModel(rel::FaultModel{0.0});
  FaultInjector injector(ctx);
  util::Rng rng(1);
  const auto one = injector.run_once(cfg_, rng);
  const auto analytical = sched::ListScheduler{}.run(ctx, cfg_);
  EXPECT_NEAR(one.makespan, analytical.makespan, 1e-9);
  EXPECT_NEAR(one.energy, analytical.energy, 1e-6);
  EXPECT_DOUBLE_EQ(one.weighted_success, 1.0);
  EXPECT_EQ(one.reexecutions, 0u);
  for (bool failed : one.task_failed) EXPECT_FALSE(failed);
}

TEST_F(InjectionTest, EmpiricalErrorRatesMatchAnalytical) {
  FaultInjector injector(app_->context());
  util::Rng rng(2);
  const std::size_t runs = 20000;
  const auto agg = injector.run_many(cfg_, runs, rng);
  const auto analytical = sched::ListScheduler{}.run(app_->context(), cfg_);
  for (tg::TaskId t = 0; t < app_->graph().num_tasks(); ++t) {
    const double p = analytical.tasks[t].metrics.err_prob;
    // 4-sigma binomial band plus a small model term for the second-order
    // effects the analytical model drops (silent errors during retries).
    const double sigma = std::sqrt(std::max(p * (1 - p), 1e-9) / runs);
    EXPECT_NEAR(agg.task_error_rate[t], p, 4 * sigma + 0.1 * p + 5e-4)
        << "task " << t << " analytical " << p << " empirical " << agg.task_error_rate[t];
  }
}

TEST_F(InjectionTest, EmpiricalFappMatchesAnalytical) {
  FaultInjector injector(app_->context());
  util::Rng rng(3);
  const auto agg = injector.run_many(cfg_, 20000, rng);
  const auto analytical = sched::ListScheduler{}.run(app_->context(), cfg_);
  EXPECT_NEAR(agg.weighted_success.mean(), analytical.func_rel, 2e-3);
}

TEST_F(InjectionTest, EmpiricalMakespanMatchesAnalyticalAverage) {
  FaultInjector injector(app_->context());
  util::Rng rng(4);
  const auto agg = injector.run_many(cfg_, 8000, rng);
  const auto analytical = sched::ListScheduler{}.run(app_->context(), cfg_);
  // Average makespans agree to ~1%: re-execution inflation is the only
  // stochastic term and both sides model it the same way (to first order).
  EXPECT_NEAR(agg.makespan.mean(), analytical.makespan, 0.01 * analytical.makespan + 0.5);
  // The deterministic lower bound: no run can beat the error-free makespan.
  sched::EvalContext no_fault_ctx = app_->context();
  no_fault_ctx.metrics = rel::MetricsModel(rel::FaultModel{0.0});
  const auto error_free = sched::ListScheduler{}.run(no_fault_ctx, cfg_);
  EXPECT_GE(agg.makespan.min(), error_free.makespan - 1e-9);
}

TEST_F(InjectionTest, EmpiricalEnergyMatchesAnalytical) {
  FaultInjector injector(app_->context());
  util::Rng rng(5);
  const auto agg = injector.run_many(cfg_, 8000, rng);
  const auto analytical = sched::ListScheduler{}.run(app_->context(), cfg_);
  EXPECT_NEAR(agg.energy.mean(), analytical.energy, 0.01 * analytical.energy);
}

TEST_F(InjectionTest, DeterministicPerSeed) {
  FaultInjector injector(app_->context());
  util::Rng a(7), b(7);
  const auto ra = injector.run_many(cfg_, 200, a);
  const auto rb = injector.run_many(cfg_, 200, b);
  EXPECT_DOUBLE_EQ(ra.makespan.mean(), rb.makespan.mean());
  EXPECT_DOUBLE_EQ(ra.energy.mean(), rb.energy.mean());
  EXPECT_EQ(ra.task_error_rate, rb.task_error_rate);
}

TEST_F(InjectionTest, RejectsBadInputs) {
  FaultInjector injector(app_->context());
  util::Rng rng(8);
  sched::Configuration wrong;
  EXPECT_THROW(injector.run_once(wrong, rng), std::invalid_argument);
  EXPECT_THROW(injector.run_many(cfg_, 0, rng), std::invalid_argument);
}

/// Sweep: the empirical/analytical agreement must hold for every CLR
/// technique family, not just whatever the random config picked.
class InjectionClrSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InjectionClrSweep, PerConfigAgreement) {
  const auto app = exp::make_synthetic_app(6, 0xFA58);
  dse::MappingProblem problem(app->context(), dse::QosSpec{1e9, 0.0},
                              dse::ObjectiveMode::EnergyQos);
  util::Rng rng(100 + GetParam());
  auto cfg = problem.decode(problem.random_genes(rng));
  // Force the swept CLR configuration onto every task.
  for (auto& a : cfg.tasks) {
    a.clr_index = static_cast<std::uint32_t>(GetParam() % app->clr_space().size());
  }
  FaultInjector injector(app->context());
  const std::size_t runs = 12000;
  const auto agg = injector.run_many(cfg, runs, rng);
  const auto analytical = sched::ListScheduler{}.run(app->context(), cfg);
  for (tg::TaskId t = 0; t < app->graph().num_tasks(); ++t) {
    const double p = analytical.tasks[t].metrics.err_prob;
    const double sigma = std::sqrt(std::max(p * (1 - p), 1e-9) / runs);
    EXPECT_NEAR(agg.task_error_rate[t], p, 4 * sigma + 0.12 * p + 1e-3) << "task " << t;
  }
  EXPECT_NEAR(agg.weighted_success.mean(), analytical.func_rel, 4e-3);
}

INSTANTIATE_TEST_SUITE_P(ClrConfigs, InjectionClrSweep,
                         ::testing::Values(0, 1, 2, 5, 9, 14, 20, 27, 33, 41, 50, 56));

TEST(InjectionStress, HighFaultRateStillBounded) {
  // At extreme fault rates the first-order analytical model drifts, but the
  // simulator must stay well-behaved (probabilities in range, retries
  // bounded by k per task).
  auto app = exp::make_synthetic_app(8, 0xFA59);
  sched::EvalContext ctx = app->context();
  ctx.metrics = rel::MetricsModel(rel::FaultModel{0.5});
  dse::MappingProblem problem(ctx, dse::QosSpec{1e9, 0.0}, dse::ObjectiveMode::EnergyQos);
  util::Rng rng(9);
  const auto cfg = problem.decode(problem.random_genes(rng));
  FaultInjector injector(ctx);
  const auto agg = injector.run_many(cfg, 500, rng);
  for (double rate : agg.task_error_rate) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  EXPECT_GE(agg.weighted_success.mean(), 0.0);
  EXPECT_LE(agg.weighted_success.mean(), 1.0);
  EXPECT_GT(agg.makespan.min(), 0.0);
}

}  // namespace
}  // namespace clr::sim
