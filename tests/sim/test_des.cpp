#include "sim/des.hpp"

#include <gtest/gtest.h>

namespace clr::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TieBreaksByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(10); });
  q.schedule(1.0, [&] { order.push_back(20); });
  q.schedule(1.0, [&] { order.push_back(30); });
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  const auto id = q.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double cancel
  while (q.step()) {
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelFiredEventFails) {
  EventQueue q;
  const auto id = q.schedule(1.0, [] {});
  q.step();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(999));  // unknown id
}

TEST(EventQueue, PendingCountsLiveEvents) {
  EventQueue q;
  q.schedule(1.0, [] {});
  const auto id = q.schedule(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(id);
  EXPECT_EQ(q.pending(), 1u);
  q.step();
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(q.now());
    if (times.size() < 5) q.schedule(q.now() + 1.0, tick);
  };
  q.schedule(0.0, tick);
  while (q.step()) {
  }
  EXPECT_EQ(times, (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunHonorsUntilBound) {
  EventQueue q;
  int fired = 0;
  for (int i = 1; i <= 5; ++i) q.schedule(i, [&] { ++fired; });
  EXPECT_EQ(q.run(3.0), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_EQ(q.run(), 2u);  // drain the rest
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.step();
  EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
  EXPECT_NO_THROW(q.schedule(5.0, [] {}));  // now() itself is fine
}

TEST(EventQueue, StepOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_EQ(q.run(), 0u);
}

}  // namespace
}  // namespace clr::sim
