// Core tests of the tracing subsystem (DESIGN.md §5.8): category parsing,
// the disabled no-op guarantee, span nesting and timing, typed argument
// rendering, Chrome trace_event export (validated through io::Json::parse),
// the summary-table aggregation, and concurrent multi-thread recording.
//
// The Tracer is a process-wide singleton, so every test scrubs it
// (disable + clear) on entry and exit via the fixture.

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/json.hpp"
#include "trace/trace.hpp"

namespace clr::trace {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { scrub(); }
  void TearDown() override { scrub(); }
  static void scrub() {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
};

TEST_F(TraceTest, CategoryNamesAreStable) {
  EXPECT_STREQ(category_name(Category::Dse), "dse");
  EXPECT_STREQ(category_name(Category::Runtime), "runtime");
  EXPECT_STREQ(category_name(Category::Exp), "exp");
  EXPECT_STREQ(category_name(Category::Drc), "drc");
  EXPECT_STREQ(category_name(Category::Bench), "bench");
}

TEST_F(TraceTest, ParseCategories) {
  EXPECT_EQ(parse_categories("dse"), mask_of(Category::Dse));
  EXPECT_EQ(parse_categories("dse,runtime"),
            mask_of(Category::Dse) | mask_of(Category::Runtime));
  EXPECT_EQ(parse_categories("runtime, exp"),  // tolerate spaces
            mask_of(Category::Runtime) | mask_of(Category::Exp));
  EXPECT_EQ(parse_categories("all"), kAllCategories);
  EXPECT_EQ(parse_categories(""), kAllCategories);
  EXPECT_THROW(parse_categories("dse,bogus"), std::invalid_argument);
  try {
    parse_categories("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("dse"), std::string::npos);  // lists the valid names
  }
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  auto& tracer = Tracer::instance();
  ASSERT_FALSE(tracer.enabled());
  {
    CLR_TRACE_SPAN(span, Category::Dse, "noop", {{"k", 1}});
    EXPECT_FALSE(span.active());
    CLR_TRACE_INSTANT(Category::Runtime, "noop.instant");
    CLR_TRACE_COUNTER(Category::Exp, "noop.counter", 1.0);
  }
  EXPECT_EQ(tracer.num_events(), 0u);
  EXPECT_TRUE(tracer.collect().empty());
}

TEST_F(TraceTest, MaskFiltersByCategory) {
  auto& tracer = Tracer::instance();
  tracer.enable(mask_of(Category::Dse));
  EXPECT_TRUE(tracer.category_enabled(Category::Dse));
  EXPECT_FALSE(tracer.category_enabled(Category::Runtime));
  {
    CLR_TRACE_SPAN(kept, Category::Dse, "kept");
    EXPECT_TRUE(kept.active());
    CLR_TRACE_SPAN(dropped, Category::Runtime, "dropped");
    EXPECT_FALSE(dropped.active());
    CLR_TRACE_INSTANT(Category::Runtime, "dropped.instant");
  }
  tracer.disable();
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "kept");
  EXPECT_EQ(events[0].category, Category::Dse);
}

TEST_F(TraceTest, SpansNestAndCarryDurations) {
  auto& tracer = Tracer::instance();
  tracer.enable();
  {
    CLR_TRACE_SPAN(outer, Category::Dse, "outer");
    {
      CLR_TRACE_SPAN(inner, Category::Dse, "inner", {{"depth", 2}});
    }
  }
  tracer.disable();
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order records inner first, but collect() sorts by start ts.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[0].phase, Phase::Complete);
  // The outer span fully contains the inner one.
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_GE(events[0].ts_ns + events[0].dur_ns, events[1].ts_ns + events[1].dur_ns);
}

TEST_F(TraceTest, SpanArgAttachesAfterConstruction) {
  auto& tracer = Tracer::instance();
  tracer.enable();
  {
    CLR_TRACE_SPAN(span, Category::Exp, "with_result");
    span.arg({"result", 42});
  }
  tracer.disable();
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "result");
  EXPECT_EQ(events[0].args[0].value, "42");
  EXPECT_FALSE(events[0].args[0].is_string);
}

TEST_F(TraceTest, InstantAndCounterEvents) {
  auto& tracer = Tracer::instance();
  tracer.enable();
  tracer.instant(Category::Runtime, "marker", {{"why", "test"}});
  tracer.counter(Category::Dse, "cache.hits", 17.0);
  tracer.disable();
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, Phase::Instant);
  EXPECT_EQ(events[0].name, "marker");
  EXPECT_EQ(events[1].phase, Phase::Counter);
  EXPECT_EQ(events[1].name, "cache.hits");
}

TEST_F(TraceTest, CollectIsSortedByTimestamp) {
  auto& tracer = Tracer::instance();
  tracer.enable();
  for (int i = 0; i < 100; ++i) tracer.instant(Category::Bench, "tick", {{"i", i}});
  tracer.disable();
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 100u);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const Event& a, const Event& b) { return a.ts_ns < b.ts_ns; }));
}

TEST_F(TraceTest, ChromeTraceIsValidAndTyped) {
  auto& tracer = Tracer::instance();
  tracer.enable();
  {
    CLR_TRACE_SPAN(span, Category::Dse, "typed",
                   {{"text", "hello"}, {"count", 3}, {"ratio", 0.25}, {"flag", true}});
  }
  tracer.instant(Category::Runtime, "point");
  tracer.counter(Category::Dse, "gauge", 2.5);
  tracer.disable();

  // Round-trip through the repo's own JSON parser: the export must be valid.
  const io::Json parsed = io::Json::parse(tracer.chrome_trace().dump());
  EXPECT_EQ(parsed.at("displayTimeUnit").as_string(), "ms");
  const auto& events = parsed.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 3u);

  const auto find = [&](const std::string& name) -> const io::Json& {
    for (const auto& e : events) {
      if (e.at("name").as_string() == name) return e;
    }
    throw std::runtime_error("event not found: " + name);
  };

  const auto& span = find("typed");
  EXPECT_EQ(span.at("ph").as_string(), "X");
  EXPECT_EQ(span.at("cat").as_string(), "dse");
  EXPECT_GE(span.at("dur").as_number(), 0.0);
  EXPECT_EQ(span.at("pid").as_int(), 1);
  const auto& args = span.at("args");
  EXPECT_EQ(args.at("text").as_string(), "hello");
  EXPECT_DOUBLE_EQ(args.at("count").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(args.at("ratio").as_number(), 0.25);
  EXPECT_EQ(args.at("flag").as_bool(), true);

  const auto& instant = find("point");
  EXPECT_EQ(instant.at("ph").as_string(), "i");
  EXPECT_EQ(instant.at("s").as_string(), "t");

  const auto& counter = find("gauge");
  EXPECT_EQ(counter.at("ph").as_string(), "C");
}

TEST_F(TraceTest, StringArgsAreEscaped) {
  auto& tracer = Tracer::instance();
  tracer.enable();
  tracer.instant(Category::Exp, "escapes", {{"label", "a \"quoted\"\nline"}});
  tracer.disable();
  const io::Json parsed = io::Json::parse(tracer.chrome_trace().dump());
  const auto& ev = parsed.at("traceEvents").as_array().at(0);
  EXPECT_EQ(ev.at("args").at("label").as_string(), "a \"quoted\"\nline");
}

TEST_F(TraceTest, SpanStatsAggregateByName) {
  auto& tracer = Tracer::instance();
  tracer.enable();
  for (int i = 0; i < 5; ++i) {
    CLR_TRACE_SPAN(a, Category::Dse, "alpha");
  }
  for (int i = 0; i < 3; ++i) {
    CLR_TRACE_SPAN(b, Category::Runtime, "beta");
  }
  tracer.instant(Category::Dse, "ignored.by.stats");
  tracer.disable();

  const auto stats = tracer.span_stats();
  ASSERT_EQ(stats.size(), 2u);  // instants don't contribute rows
  const auto alpha = std::find_if(stats.begin(), stats.end(),
                                  [](const SpanStats& s) { return s.name == "alpha"; });
  const auto beta = std::find_if(stats.begin(), stats.end(),
                                 [](const SpanStats& s) { return s.name == "beta"; });
  ASSERT_NE(alpha, stats.end());
  ASSERT_NE(beta, stats.end());
  EXPECT_EQ(alpha->count, 5u);
  EXPECT_EQ(beta->count, 3u);
  EXPECT_GE(alpha->max_ms, alpha->p95_ms);
  EXPECT_GE(alpha->p95_ms, alpha->p50_ms);
  EXPECT_GE(alpha->total_ms, alpha->max_ms);

  const std::string table = tracer.summary();
  EXPECT_NE(table.find("trace summary"), std::string::npos);
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
}

TEST_F(TraceTest, ClearDropsEverything) {
  auto& tracer = Tracer::instance();
  tracer.enable();
  tracer.instant(Category::Dse, "gone");
  tracer.disable();
  EXPECT_EQ(tracer.num_events(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.num_events(), 0u);
  EXPECT_TRUE(tracer.collect().empty());
}

TEST_F(TraceTest, ConcurrentRecordingLosesNothing) {
  // Per-thread buffers: many threads record at once, the collector sees every
  // event exactly once, and each thread's events carry one consistent tid.
  auto& tracer = Tracer::instance();
  tracer.enable();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 1500;  // > Chunk::kEvents to force growth
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        CLR_TRACE_SPAN(span, Category::Bench, "worker",
                       {{"t", t}, {"i", i}});
      }
    });
  }
  for (auto& w : workers) w.join();
  tracer.disable();
  const auto events = tracer.collect();
  EXPECT_EQ(events.size(), kThreads * kPerThread);
  std::vector<std::size_t> per_tid;
  for (const auto& ev : events) {
    if (ev.tid >= per_tid.size()) per_tid.resize(ev.tid + 1, 0);
    ++per_tid[ev.tid];
  }
  std::size_t writers = 0;
  for (std::size_t n : per_tid) {
    if (n > 0) {
      ++writers;
      EXPECT_EQ(n % kPerThread, 0u);  // threads may reuse a buffer slot id
    }
  }
  EXPECT_GE(writers, 1u);
  EXPECT_LE(writers, kThreads);
}

TEST_F(TraceTest, ReEnableStartsAFreshEpochButKeepsEvents) {
  auto& tracer = Tracer::instance();
  tracer.enable();
  tracer.instant(Category::Dse, "first");
  tracer.disable();
  tracer.enable();
  tracer.instant(Category::Dse, "second");
  tracer.disable();
  EXPECT_EQ(tracer.num_events(), 2u);
}

}  // namespace
}  // namespace clr::trace
