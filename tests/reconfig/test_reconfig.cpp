#include "reconfig/reconfig.hpp"

#include <gtest/gtest.h>

#include "platform/platform.hpp"
#include "taskgraph/generator.hpp"

namespace clr::recfg {
namespace {

class ReconfigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    plat::PeType gp;
    gp.kind = plat::PeKind::GeneralPurpose;
    const auto t_gp = hw_.add_pe_type(gp);
    plat::PeType accel;
    accel.kind = plat::PeKind::Accelerator;
    const auto t_ac = hw_.add_pe_type(accel);

    pe0_ = hw_.add_pe(t_gp);
    pe1_ = hw_.add_pe(t_gp);
    const auto prr = hw_.add_prr(4096);  // bitstream: 4096 bytes
    pe_accel_ = hw_.add_pe(t_ac, 1024, prr);

    plat::Interconnect ic;
    ic.binary_bandwidth = 1024.0;  // bytes per time unit
    ic.icap_bandwidth = 512.0;
    ic.per_migration_overhead = 2.0;
    hw_.set_interconnect(ic);

    impls_.resize(2);
    rel::Implementation cpu_impl;
    cpu_impl.pe_type = t_gp;
    cpu_impl.binary_bytes = 2048;
    rel::Implementation accel_impl;
    accel_impl.pe_type = t_ac;
    accel_impl.binary_bytes = 1024;
    impls_.add(0, cpu_impl);    // task 0 impl 0: CPU
    impls_.add(0, accel_impl);  // task 0 impl 1: accelerator
    impls_.add(1, cpu_impl);    // task 1 impl 0: CPU
  }

  sched::Configuration base_config() const {
    sched::Configuration cfg;
    cfg.tasks = {sched::TaskAssignment{pe0_, 0, 0, 0}, sched::TaskAssignment{pe1_, 0, 0, 0}};
    return cfg;
  }

  plat::Platform hw_;
  rel::ImplementationSet impls_;
  plat::PeId pe0_ = 0, pe1_ = 0, pe_accel_ = 0;
};

TEST_F(ReconfigTest, IdenticalConfigurationsCostNothing) {
  ReconfigModel model(hw_, impls_);
  const auto cfg = base_config();
  EXPECT_DOUBLE_EQ(model.drc(cfg, cfg), 0.0);
}

TEST_F(ReconfigTest, ClrAndPriorityChangesAreFree) {
  // §3.5 modes (1) and (2): re-ordering and CLR changes incur no cost.
  ReconfigModel model(hw_, impls_);
  const auto from = base_config();
  auto to = from;
  to[0].clr_index = 5;
  to[1].priority = 9;
  EXPECT_DOUBLE_EQ(model.drc(from, to), 0.0);
}

TEST_F(ReconfigTest, PeMigrationPaysBinaryCopyPlusOverhead) {
  ReconfigModel model(hw_, impls_);
  const auto from = base_config();
  auto to = from;
  to[0].pe = pe1_;  // move task 0 (binary 2048 bytes) to the other CPU
  const auto cost = model.cost(from, to);
  EXPECT_EQ(cost.migrated_tasks, 1u);
  EXPECT_EQ(cost.prr_loads, 0u);
  EXPECT_DOUBLE_EQ(cost.migration, 2048.0 / 1024.0 + 2.0);
  EXPECT_DOUBLE_EQ(cost.bitstream, 0.0);
  EXPECT_DOUBLE_EQ(cost.total(), 4.0);
}

TEST_F(ReconfigTest, ImplementationChangeAloneAlsoPays) {
  // §3.5 mode (3): changing the implementation copies the new binary even on
  // the same... no — impl change to accelerator moves PE too; here change CPU
  // impl binary on the same PE (simulated via distinct impl on same type).
  rel::Implementation alt;
  alt.pe_type = hw_.pe(pe0_).type;
  alt.binary_bytes = 512;
  impls_.add(1, alt);  // task 1 gets a second CPU implementation
  ReconfigModel model(hw_, impls_);
  const auto from = base_config();
  auto to = from;
  to[1].impl_index = 1;
  const auto cost = model.cost(from, to);
  EXPECT_EQ(cost.migrated_tasks, 1u);
  EXPECT_DOUBLE_EQ(cost.migration, 512.0 / 1024.0 + 2.0);
}

TEST_F(ReconfigTest, AcceleratorTargetAddsBitstream) {
  ReconfigModel model(hw_, impls_);
  const auto from = base_config();
  auto to = from;
  to[0].pe = pe_accel_;
  to[0].impl_index = 1;  // accelerator implementation (1024-byte binary)
  const auto cost = model.cost(from, to);
  EXPECT_EQ(cost.migrated_tasks, 1u);
  EXPECT_EQ(cost.prr_loads, 1u);
  EXPECT_DOUBLE_EQ(cost.migration, 1024.0 / 1024.0 + 2.0);
  EXPECT_DOUBLE_EQ(cost.bitstream, 4096.0 / 512.0);
  EXPECT_DOUBLE_EQ(cost.total(), 3.0 + 8.0);
}

TEST_F(ReconfigTest, CostGrowsWithNumberOfMigratedTasks) {
  ReconfigModel model(hw_, impls_);
  const auto from = base_config();
  auto one = from;
  one[0].pe = pe1_;
  auto two = one;
  two[1].pe = pe0_;
  EXPECT_GT(model.drc(from, two), model.drc(from, one));
}

TEST_F(ReconfigTest, SizeMismatchThrows) {
  ReconfigModel model(hw_, impls_);
  const auto from = base_config();
  sched::Configuration to;
  to.tasks.resize(1);
  EXPECT_THROW(model.drc(from, to), std::invalid_argument);
}

TEST_F(ReconfigTest, AverageDrcOverTargets) {
  ReconfigModel model(hw_, impls_);
  const auto from = base_config();
  auto moved = from;
  moved[0].pe = pe1_;  // costs 4.0 from `from`
  EXPECT_DOUBLE_EQ(model.average_drc(from, {from, moved}), 2.0);
  EXPECT_DOUBLE_EQ(model.average_drc(from, {}), 0.0);
}

TEST(ReconfigProperty, DrcIsNonNegativeAndZeroOnDiagonal) {
  tg::GeneratorParams gp;
  gp.num_tasks = 25;
  util::Rng rng(404);
  const auto graph = tg::TgffGenerator(gp).generate(rng);
  const auto hw = plat::make_default_hmpsoc();
  const auto impls = rel::generate_implementations(graph, hw, rel::ImplGenParams{}, rng);
  ReconfigModel model(hw, impls);

  auto random_config = [&]() {
    sched::Configuration cfg;
    cfg.tasks.resize(graph.num_tasks());
    for (tg::TaskId t = 0; t < graph.num_tasks(); ++t) {
      std::vector<std::pair<plat::PeId, std::size_t>> choices;
      for (const auto& pe : hw.pes()) {
        for (std::size_t i : impls.compatible_with(t, pe.type)) choices.emplace_back(pe.id, i);
      }
      const auto [pe, impl] = choices[rng.index(choices.size())];
      cfg[t] = sched::TaskAssignment{pe, static_cast<std::uint32_t>(impl), 0, 0};
    }
    return cfg;
  };

  for (int i = 0; i < 20; ++i) {
    const auto a = random_config();
    const auto b = random_config();
    EXPECT_DOUBLE_EQ(model.drc(a, a), 0.0);
    EXPECT_GE(model.drc(a, b), 0.0);
  }
}

}  // namespace
}  // namespace clr::recfg
