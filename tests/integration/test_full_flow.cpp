// End-to-end integration: design-time DSE + run-time Monte-Carlo adaptation
// on one small application, asserting the qualitative shapes the paper
// reports (DESIGN.md §4).

#include <gtest/gtest.h>

#include "experiments/flow.hpp"
#include "runtime/drc_matrix.hpp"

namespace clr::exp {
namespace {

class FullFlowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    app_ = make_synthetic_app(16, 20210).release();
    FlowParams params;
    params.dse.base_ga.population = 48;
    params.dse.base_ga.generations = 40;
    params.dse.red_ga.population = 24;
    params.dse.red_ga.generations = 20;
    params.dse.max_red_seeds = 8;
    util::Rng rng(11);
    flow_ = new FlowResult(run_design_flow(*app_, params, rng));
  }

  static void TearDownTestSuite() {
    delete flow_;
    delete app_;
    flow_ = nullptr;
    app_ = nullptr;
  }

  static RuntimeEvalParams eval_params(PolicyKind kind, double p_rc) {
    RuntimeEvalParams p;
    p.kind = kind;
    p.p_rc = p_rc;
    p.sim.total_cycles = 1e5;
    return p;
  }

  static AppInstance* app_;
  static FlowResult* flow_;
};

AppInstance* FullFlowTest::app_ = nullptr;
FlowResult* FullFlowTest::flow_ = nullptr;

TEST_F(FullFlowTest, DesignTimeProducesBothDatabases) {
  EXPECT_FALSE(flow_->based.empty());
  EXPECT_GE(flow_->red.size(), flow_->based.size());
  EXPECT_EQ(flow_->based.num_extra(), 0u);
}

TEST_F(FullFlowTest, QosRangesCoverTheFrontBand) {
  const auto box = qos_ranges(*flow_);
  const auto base = flow_->based.ranges();
  // The demand box must sweep the whole front band (so adaptation happens)
  // with some slack on the loose side, but never beyond the global spec.
  EXPECT_LE(box.makespan_min, base.makespan_min);
  EXPECT_GE(box.makespan_max, base.makespan_max - 1e-9);
  EXPECT_LE(box.makespan_max, std::max(flow_->spec.max_makespan, base.makespan_max) + 1e-9);
  EXPECT_LE(box.func_rel_min, base.func_rel_min + 1e-12);
  EXPECT_GE(box.func_rel_min, std::min(flow_->spec.min_func_rel, base.func_rel_min) - 1e-12);
  EXPECT_GE(box.func_rel_max, base.func_rel_max - 1e-12);
}

TEST_F(FullFlowTest, RuntimeEnergyStaysWithinDatabaseRange) {
  const auto box = qos_ranges(*flow_);
  const auto stats = evaluate_policy(*app_, flow_->red, box, eval_params(PolicyKind::Ura, 0.5), 1);
  const auto r = flow_->red.ranges();
  EXPECT_GE(stats.avg_energy, r.energy_min - 1e-9);
  EXPECT_LE(stats.avg_energy, r.energy_max + 1e-9);
}

TEST_F(FullFlowTest, PrcTradesEnergyAgainstReconfigCost) {
  // Fig. 7 shape: pRC = 1 maximizes adaptation cost and minimizes energy;
  // pRC = 0 the reverse.
  const auto box = qos_ranges(*flow_);
  const auto lo = evaluate_policy(*app_, flow_->red, box, eval_params(PolicyKind::Ura, 0.0), 2);
  const auto hi = evaluate_policy(*app_, flow_->red, box, eval_params(PolicyKind::Ura, 1.0), 2);
  EXPECT_LE(lo.total_reconfig_cost, hi.total_reconfig_cost);
  EXPECT_LE(hi.avg_energy, lo.avg_energy + 1e-9);
}

TEST_F(FullFlowTest, RedDoesNotIncreaseEnergyAtPrcOne) {
  // Table 6 shape (pRC = 1): the ReD extras can only improve the best
  // feasible energy choice, never worsen it (BaseD is a subset of ReD).
  const auto box = qos_ranges(*flow_);
  const auto based = evaluate_policy(*app_, flow_->based, box, eval_params(PolicyKind::Ura, 1.0), 3);
  const auto red = evaluate_policy(*app_, flow_->red, box, eval_params(PolicyKind::Ura, 1.0), 3);
  EXPECT_LE(red.avg_energy, based.avg_energy + 1e-9);
}

TEST_F(FullFlowTest, BaselinePolicyReconfiguresAtLeastAsOftenAsStickyUra) {
  // Fig. 6 shape: the performance-oriented baseline hunts the best point on
  // every event; reconfiguration-cost-aware uRA (pRC = 0) adapts only on
  // violations.
  const auto box = qos_ranges(*flow_);
  const auto baseline =
      evaluate_policy(*app_, flow_->based, box, eval_params(PolicyKind::Baseline, 0.5), 4);
  const auto sticky = evaluate_policy(*app_, flow_->red, box, eval_params(PolicyKind::Ura, 0.0), 4);
  EXPECT_GE(baseline.num_reconfigs, sticky.num_reconfigs);
  EXPECT_GE(baseline.total_reconfig_cost, sticky.total_reconfig_cost);
}

TEST_F(FullFlowTest, AuraRunsWithAndWithoutPretraining) {
  const auto box = qos_ranges(*flow_);
  auto with = eval_params(PolicyKind::Aura, 0.5);
  with.pretrain = true;
  auto without = eval_params(PolicyKind::Aura, 0.5);
  without.pretrain = false;
  const auto s_with = evaluate_policy(*app_, flow_->red, box, with, 5);
  const auto s_without = evaluate_policy(*app_, flow_->red, box, without, 5);
  EXPECT_GT(s_with.num_events, 0u);
  EXPECT_GT(s_without.num_events, 0u);
}

TEST_F(FullFlowTest, SameSeedSameStats) {
  const auto box = qos_ranges(*flow_);
  const auto a = evaluate_policy(*app_, flow_->red, box, eval_params(PolicyKind::Ura, 0.5), 6);
  const auto b = evaluate_policy(*app_, flow_->red, box, eval_params(PolicyKind::Ura, 0.5), 6);
  EXPECT_DOUBLE_EQ(a.avg_energy, b.avg_energy);
  EXPECT_EQ(a.num_reconfigs, b.num_reconfigs);
  EXPECT_DOUBLE_EQ(a.total_reconfig_cost, b.total_reconfig_cost);
}

TEST_F(FullFlowTest, CspModeFlowAlsoWorks) {
  // Table 4 uses the constraint-satisfaction variant (R = 0).
  FlowParams params;
  params.mode = dse::ObjectiveMode::CspQos;
  params.dse.base_ga.population = 32;
  params.dse.base_ga.generations = 25;
  params.dse.red_ga.population = 16;
  params.dse.red_ga.generations = 12;
  params.dse.max_red_seeds = 4;
  util::Rng rng(12);
  const auto flow = run_design_flow(*app_, params, rng);
  EXPECT_FALSE(flow.based.empty());
  EXPECT_GE(flow.red.size(), flow.based.size());
}

}  // namespace
}  // namespace clr::exp
