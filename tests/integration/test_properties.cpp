// Cross-module property tests: invariants that tie several subsystems
// together (oracle checks, metric consistency, structural inequalities).

#include <gtest/gtest.h>

#include "dse/mapping_problem.hpp"
#include "experiments/flow.hpp"
#include "io/json.hpp"
#include "moea/hypervolume.hpp"
#include "reconfig/reconfig.hpp"
#include "runtime/drc_matrix.hpp"

namespace clr {
namespace {

// ---------------------------------------------------------------------------
// dRC structural properties
// ---------------------------------------------------------------------------

/// On a bus interconnect the per-task migration cost depends only on the
/// *target* assignment, so dRC obeys the triangle inequality: every task that
/// differs between a and c differs in at least one of the two legs, and its
/// cost on that leg is at least its direct cost.
TEST(DrcProperties, TriangleInequalityOnBus) {
  const auto app = exp::make_synthetic_app(20, 0x7714);
  dse::MappingProblem problem(app->context(), dse::QosSpec{1e9, 0.0},
                              dse::ObjectiveMode::EnergyQos);
  recfg::ReconfigModel model(app->platform(), app->impls());
  util::Rng rng(1);
  for (int trial = 0; trial < 25; ++trial) {
    const auto a = problem.decode(problem.random_genes(rng));
    const auto b = problem.decode(problem.random_genes(rng));
    const auto c = problem.decode(problem.random_genes(rng));
    EXPECT_LE(model.drc(a, c), model.drc(a, b) + model.drc(b, c) + 1e-9);
  }
}

TEST(DrcProperties, MatrixMatchesDirectEvaluation) {
  const auto app = exp::make_synthetic_app(12, 0x7715);
  dse::MappingProblem problem(app->context(), dse::QosSpec{1e9, 0.0},
                              dse::ObjectiveMode::EnergyQos);
  recfg::ReconfigModel model(app->platform(), app->impls());
  dse::DesignDb db;
  util::Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    dse::DesignPoint p;
    p.config = problem.decode(problem.random_genes(rng));
    p.config.tasks[0].priority = 100 + i;  // force uniqueness
    db.add(p);
  }
  rt::DrcMatrix matrix(db, model);
  for (std::size_t i = 0; i < db.size(); ++i) {
    for (std::size_t j = 0; j < db.size(); ++j) {
      EXPECT_DOUBLE_EQ(matrix.drc(i, j), model.drc(db.point(i).config, db.point(j).config));
    }
  }
}

// ---------------------------------------------------------------------------
// Schedule metric consistency
// ---------------------------------------------------------------------------

/// Energy must equal the sum of per-task energies, Fapp must equal the
/// criticality-weighted success, and the peak power can never exceed the sum
/// of all concurrent task powers nor fall below the largest single one.
class MetricConsistency : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MetricConsistency, HoldsOnRandomConfigurations) {
  const auto app = exp::make_synthetic_app(GetParam(), 0x7716 + GetParam());
  dse::MappingProblem problem(app->context(), dse::QosSpec{1e9, 0.0},
                              dse::ObjectiveMode::EnergyQos);
  util::Rng rng(3);
  sched::ListScheduler scheduler;
  for (int trial = 0; trial < 5; ++trial) {
    const auto cfg = problem.decode(problem.random_genes(rng));
    const auto res = scheduler.run(app->context(), cfg);

    double energy = 0.0, frel = 0.0, max_power = 0.0, power_sum = 0.0;
    for (tg::TaskId t = 0; t < app->graph().num_tasks(); ++t) {
      const auto& m = res.tasks[t].metrics;
      energy += m.energy();
      frel += (1.0 - m.err_prob) * app->graph().normalized_criticality(t);
      max_power = std::max(max_power, m.avg_power);
      power_sum += m.avg_power;
    }
    EXPECT_NEAR(res.energy, energy, 1e-9 * std::max(energy, 1.0));
    EXPECT_NEAR(res.func_rel, frel, 1e-12);
    EXPECT_GE(res.peak_power + 1e-9, max_power);
    EXPECT_LE(res.peak_power, power_sum + 1e-9);
    EXPECT_GT(res.system_mttf, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MetricConsistency, ::testing::Values(5, 15, 40, 80));

/// Priorities and CLR choices are free to change; the energy of a schedule
/// must not depend on priorities at all (same task set, same metrics).
TEST(MetricConsistency, EnergyIsPriorityInvariant) {
  const auto app = exp::make_synthetic_app(18, 0x7717);
  dse::MappingProblem problem(app->context(), dse::QosSpec{1e9, 0.0},
                              dse::ObjectiveMode::EnergyQos);
  util::Rng rng(4);
  sched::ListScheduler scheduler;
  auto cfg = problem.decode(problem.random_genes(rng));
  const double energy = scheduler.run(app->context(), cfg).energy;
  for (int trial = 0; trial < 5; ++trial) {
    for (auto& a : cfg.tasks) a.priority = rng.uniform_int(0, 17);
    EXPECT_NEAR(scheduler.run(app->context(), cfg).energy, energy, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Hypervolume oracle checks (3-D exact vs Monte-Carlo)
// ---------------------------------------------------------------------------

class Hv3dOracle : public ::testing::TestWithParam<int> {};

TEST_P(Hv3dOracle, ExactMatchesMonteCarlo) {
  util::Rng rng(500 + GetParam());
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  }
  const std::vector<double> ref{1.0, 1.0, 1.0};
  const double exact = moea::hypervolume(pts, ref);
  const double mc = moea::hypervolume_mc(pts, {0.0, 0.0, 0.0}, ref, 200000, rng);
  EXPECT_NEAR(mc, exact, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Hv3dOracle, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// JSON fuzz-lite round trips
// ---------------------------------------------------------------------------

io::Json random_json(util::Rng& rng, int depth) {
  const int kind = depth <= 0 ? rng.uniform_int(0, 2) : rng.uniform_int(0, 4);
  switch (kind) {
    case 0: return io::Json(rng.uniform(-1e6, 1e6));
    case 1: {
      std::string s;
      const int len = rng.uniform_int(0, 12);
      for (int i = 0; i < len; ++i) {
        s += static_cast<char>(rng.uniform_int(32, 126));
      }
      return io::Json(std::move(s));
    }
    case 2: return rng.chance(0.5) ? io::Json(rng.chance(0.5)) : io::Json(nullptr);
    case 3: {
      io::JsonArray arr;
      const int len = rng.uniform_int(0, 5);
      for (int i = 0; i < len; ++i) arr.push_back(random_json(rng, depth - 1));
      return io::Json(std::move(arr));
    }
    default: {
      io::JsonObject obj;
      const int len = rng.uniform_int(0, 5);
      for (int i = 0; i < len; ++i) {
        obj.emplace_back("k" + std::to_string(i), random_json(rng, depth - 1));
      }
      return io::Json(std::move(obj));
    }
  }
}

class JsonFuzz : public ::testing::TestWithParam<int> {};

TEST_P(JsonFuzz, DumpParseDumpIsIdentity) {
  util::Rng rng(900 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const auto v = random_json(rng, 4);
    const std::string once = v.dump();
    const std::string twice = io::Json::parse(once).dump();
    EXPECT_EQ(once, twice);
    // Pretty-printing parses back to the same compact form too.
    EXPECT_EQ(io::Json::parse(v.dump(2)).dump(), once);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// Design-flow invariants across sizes
// ---------------------------------------------------------------------------

class FlowInvariants : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FlowInvariants, RedIsASupersetOfFeasibleBase) {
  const auto app = exp::make_synthetic_app(GetParam(), 0x7718 + GetParam());
  exp::FlowParams params;
  params.dse.base_ga.population = 24;
  params.dse.base_ga.generations = 12;
  params.dse.red_ga.population = 12;
  params.dse.red_ga.generations = 6;
  params.dse.max_red_seeds = 3;
  util::Rng rng(5);
  const auto flow = exp::run_design_flow(*app, params, rng);
  EXPECT_FALSE(flow.based.empty());
  EXPECT_GE(flow.red.size(), flow.based.size());
  for (const auto& p : flow.red.points()) {
    EXPECT_LE(p.makespan, flow.spec.max_makespan * (1 + 1e-9));
    EXPECT_GE(p.func_rel, flow.spec.min_func_rel - 1e-9);
  }
  // No duplicated configurations in the merged database.
  for (std::size_t i = 0; i < flow.red.size(); ++i) {
    for (std::size_t j = i + 1; j < flow.red.size(); ++j) {
      EXPECT_FALSE(flow.red.point(i).config == flow.red.point(j).config);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FlowInvariants, ::testing::Values(8, 16, 24));

}  // namespace
}  // namespace clr
