// Degraded-mode semantics of the fault-aware runtime loop (ISSUE 3): the
// fault-free bit-identity contract, transient recovery accounting, the
// three-tier fallback chain under permanent faults (including the
// zero-alive-PE edge), and fault-stream determinism across thread counts.

#include <gtest/gtest.h>

#include <algorithm>

#include "experiments/runner.hpp"
#include "runtime/simulator.hpp"

namespace clr::rt {
namespace {

dse::DesignPoint make_point(std::vector<plat::PeId> pes, double makespan, double func_rel,
                            double energy) {
  dse::DesignPoint p;
  for (std::size_t t = 0; t < pes.size(); ++t) {
    sched::TaskAssignment a;
    a.pe = pes[t];
    a.priority = static_cast<std::int32_t>(t);
    p.config.tasks.push_back(a);
  }
  p.makespan = makespan;
  p.func_rel = func_rel;
  p.energy = energy;
  return p;
}

/// A narrow QoS box: every sampled spec demands makespan ~[99, 101] and
/// func_rel ~[0.90, 0.92], so feasibility per point is fixed by construction.
dse::MetricRanges narrow_ranges() {
  dse::MetricRanges r;
  r.makespan_min = 99.0;
  r.makespan_max = 101.0;
  r.func_rel_min = 0.90;
  r.func_rel_max = 0.92;
  r.energy_min = 30.0;
  r.energy_max = 40.0;
  return r;
}

/// Two PEs, two points: p0 (PE 0) always feasible and cheapest; p1 (PE 1)
/// always *slightly* infeasible — violation (106-spec)/spec in ~[0.05, 0.07].
dse::DesignDb degraded_db() {
  dse::DesignDb db;
  db.add(make_point({0}, 90.0, 0.99, 30.0));
  db.add(make_point({1}, 106.0, 0.99, 40.0));
  return db;
}

DrcMatrix two_point_drc() { return DrcMatrix(2, {0, 5, 5, 0}); }

void expect_same_stats(const RuntimeStats& a, const RuntimeStats& b) {
  EXPECT_EQ(a.num_events, b.num_events);
  EXPECT_EQ(a.num_reconfigs, b.num_reconfigs);
  EXPECT_EQ(a.num_infeasible_events, b.num_infeasible_events);
  EXPECT_DOUBLE_EQ(a.avg_energy, b.avg_energy);
  EXPECT_DOUBLE_EQ(a.total_reconfig_cost, b.total_reconfig_cost);
  EXPECT_DOUBLE_EQ(a.max_drc, b.max_drc);
  EXPECT_DOUBLE_EQ(a.qos_violation_time, b.qos_violation_time);
  EXPECT_EQ(a.num_transient_faults, b.num_transient_faults);
  EXPECT_EQ(a.num_recovered_transients, b.num_recovered_transients);
  EXPECT_EQ(a.num_unrecovered_failures, b.num_unrecovered_failures);
  EXPECT_EQ(a.num_permanent_faults, b.num_permanent_faults);
  EXPECT_EQ(a.num_evacuations, b.num_evacuations);
  EXPECT_EQ(a.num_safe_mode_entries, b.num_safe_mode_entries);
  EXPECT_DOUBLE_EQ(a.downtime, b.downtime);
  EXPECT_DOUBLE_EQ(a.availability, b.availability);
  EXPECT_DOUBLE_EQ(a.mttr, b.mttr);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trace[i].time, b.trace[i].time);
    EXPECT_EQ(a.trace[i].point, b.trace[i].point);
    EXPECT_EQ(a.trace[i].fault, b.trace[i].fault);
    EXPECT_EQ(a.trace[i].violation, b.trace[i].violation);
    EXPECT_EQ(a.trace[i].safe_mode, b.trace[i].safe_mode);
  }
}

TEST(FaultFreePath, DisabledScenarioIsBitIdenticalToNoScenario) {
  const auto db = degraded_db();
  const auto drc = two_point_drc();
  QosProcess qos(narrow_ranges());
  SimulationParams params;
  params.total_cycles = 2e4;
  params.trace_events = 100;
  RuntimeSimulator sim(params);

  UraPolicy p1(db, drc, 0.5);
  util::Rng r1(17);
  const auto plain = sim.run(db, p1, qos, r1);

  UraPolicy p2(db, drc, 0.5);
  util::Rng r2(17);
  flt::FaultScenario disabled;  // all rates zero
  disabled.seed = 999;          // must be irrelevant
  const auto gated = sim.run(db, p2, qos, r2, &disabled);

  expect_same_stats(plain, gated);
  EXPECT_DOUBLE_EQ(gated.availability, 1.0);
  EXPECT_DOUBLE_EQ(gated.downtime, 0.0);
  EXPECT_EQ(gated.num_transient_faults, 0u);
}

TEST(FaultFreePath, ViolationTimeAccruesOnInfeasibleEventsWithoutFaults) {
  // A box wider than the database's makespan floor: some specs are tighter
  // than the best stored point, forcing least-violating residence.
  dse::DesignDb db;
  db.add(make_point({0}, 100.0, 0.99, 30.0));
  DrcMatrix drc(1, {0});
  dse::MetricRanges r = narrow_ranges();
  r.makespan_min = 80.0;  // specs in [80, 101]: sometimes < 100 => infeasible
  QosProcess qos(r);
  SimulationParams params;
  params.total_cycles = 5e4;
  RuntimeSimulator sim(params);
  UraPolicy policy(db, drc, 0.5);
  util::Rng rng(23);
  const auto stats = sim.run(db, policy, qos, rng);
  EXPECT_GT(stats.num_infeasible_events, 0u);
  EXPECT_GT(stats.qos_violation_time, 0.0);
  EXPECT_LE(stats.qos_violation_time, stats.total_cycles);
  EXPECT_DOUBLE_EQ(stats.availability, 1.0);  // violations are not downtime
}

TEST(TransientFaults, FullCoverageRecoversEverythingAndChargesLatency) {
  dse::DesignDb db;
  db.add(make_point({0}, 90.0, 0.99, 30.0));
  DrcMatrix drc(1, {0});
  QosProcess qos(narrow_ranges());
  SimulationParams params;
  params.total_cycles = 1e4;
  RuntimeSimulator sim(params);

  flt::FaultScenario scenario;
  scenario.params.transient_rate = 1e-2;  // ~100 arrivals over the horizon
  scenario.params.recovery_latency = 25.0;
  scenario.params.fallback_coverage = 1.0;  // no CLR space: always recover
  scenario.seed = 5;

  UraPolicy policy(db, drc, 0.5);
  util::Rng rng(31);
  const auto stats = sim.run(db, policy, qos, rng, &scenario);

  EXPECT_GT(stats.num_transient_faults, 0u);
  EXPECT_EQ(stats.num_recovered_transients, stats.num_transient_faults);
  EXPECT_EQ(stats.num_unrecovered_failures, 0u);
  EXPECT_DOUBLE_EQ(stats.downtime,
                   25.0 * static_cast<double>(stats.num_recovered_transients));
  EXPECT_DOUBLE_EQ(stats.mttr, 25.0);  // every repair is one recovery latency
  EXPECT_LT(stats.availability, 1.0);
  EXPECT_NEAR(stats.availability, 1.0 - stats.downtime / stats.total_cycles, 1e-12);
  EXPECT_GT(stats.avg_energy, 30.0);  // re-execution premium on a 30-energy point
}

TEST(TransientFaults, ZeroCoverageCountsUnrecoveredFailures) {
  dse::DesignDb db;
  db.add(make_point({0}, 90.0, 0.99, 30.0));
  DrcMatrix drc(1, {0});
  QosProcess qos(narrow_ranges());
  SimulationParams params;
  params.total_cycles = 1e4;
  RuntimeSimulator sim(params);

  flt::FaultScenario scenario;
  scenario.params.transient_rate = 1e-2;
  scenario.params.fallback_coverage = 0.0;  // nothing ever recovers
  scenario.seed = 5;

  UraPolicy policy(db, drc, 0.5);
  util::Rng rng(31);
  const auto stats = sim.run(db, policy, qos, rng, &scenario);

  EXPECT_GT(stats.num_unrecovered_failures, 0u);
  EXPECT_EQ(stats.num_recovered_transients, 0u);
  EXPECT_DOUBLE_EQ(stats.downtime, 0.0);
  EXPECT_DOUBLE_EQ(stats.availability, 1.0);
  EXPECT_DOUBLE_EQ(stats.mttr, 0.0);
  EXPECT_DOUBLE_EQ(stats.avg_energy, 30.0);  // no re-execution charged
}

TEST(TransientFaults, OnlyTheActivePointsPesAreHit) {
  dse::DesignDb db;
  db.add(make_point({0}, 90.0, 0.99, 30.0));  // active point lives on PE 0
  DrcMatrix drc(1, {0});
  QosProcess qos(narrow_ranges());
  SimulationParams params;
  params.total_cycles = 1e4;
  RuntimeSimulator sim(params);

  flt::FaultScenario scenario;
  scenario.params.transient_rate = 5e-3;
  scenario.params.fallback_coverage = 1.0;
  scenario.profiles = flt::uniform_profiles(2);
  scenario.profiles[1].ser_scale = 3.0;  // most arrivals strike the idle PE 1
  scenario.seed = 9;

  UraPolicy policy(db, drc, 0.5);
  util::Rng rng(37);
  const auto stats = sim.run(db, policy, qos, rng, &scenario);
  EXPECT_GT(stats.num_transient_faults, 0u);
  // Arrivals on PE 1 are counted but cannot hit the active point.
  EXPECT_LT(stats.num_recovered_transients + stats.num_unrecovered_failures,
            stats.num_transient_faults);
}

TEST(PermanentFaults, FallbackChainEndsInSafeModeWhenEverythingDies) {
  const auto db = degraded_db();
  const auto drc = two_point_drc();
  QosProcess qos(narrow_ranges());
  SimulationParams params;
  params.total_cycles = 2e4;
  params.trace_events = 100000;
  RuntimeSimulator sim(params);

  flt::FaultScenario scenario;
  scenario.params.pe_mtbf = 2e3;  // both PEs die early in the horizon
  scenario.params.qos_tolerance = 0.10;
  scenario.seed = 13;

  UraPolicy policy(db, drc, 1.0);
  util::Rng rng(41);
  const auto stats = sim.run(db, policy, qos, rng, &scenario);

  EXPECT_EQ(stats.num_permanent_faults, 2u);
  EXPECT_EQ(stats.num_safe_mode_entries, 1u);  // entered once, never leavable
  EXPECT_LT(stats.availability, 1.0);
  EXPECT_GT(stats.downtime, 0.0);
  EXPECT_GT(stats.qos_violation_time, 0.0);  // safe mode violates by definition

  // The trace records the permanent faults and ends in safe mode.
  const auto permanents = std::count_if(
      stats.trace.begin(), stats.trace.end(),
      [](const EventRecord& e) { return e.fault == flt::FaultKind::Permanent; });
  EXPECT_EQ(permanents, 2);
  ASSERT_FALSE(stats.trace.empty());
  EXPECT_TRUE(stats.trace.back().safe_mode);
  EXPECT_TRUE(stats.trace.back().violation);
}

TEST(PermanentFaults, RelaxedQosTierAdoptsTheToleratedPoint) {
  // Seed chosen so PE 0 (the active point's) dies first: the chain must pass
  // through tier 2 — p1 violates every spec by ~5-7%, within the 10% band.
  const auto db = degraded_db();
  const auto drc = two_point_drc();
  QosProcess qos(narrow_ranges());
  SimulationParams params;
  params.total_cycles = 2e4;
  params.trace_events = 100000;
  RuntimeSimulator sim(params);

  flt::FaultScenario scenario;
  scenario.params.pe_mtbf = 2e3;
  scenario.params.qos_tolerance = 0.10;
  scenario.seed = 0;  // this fault stream retires PE 0 (~cycle 942) well before PE 1

  UraPolicy policy(db, drc, 1.0);
  util::Rng rng(41);
  const auto tolerant = sim.run(db, policy, qos, rng, &scenario);

  // Same timeline with a zero band: tier 2 is off the table, so every
  // evacuation the tolerant run performed becomes a safe-mode drop.
  flt::FaultScenario strict = scenario;
  strict.params.qos_tolerance = 0.0;
  UraPolicy policy2(db, drc, 1.0);
  util::Rng rng2(41);
  const auto unforgiving = sim.run(db, policy2, qos, rng2, &strict);

  EXPECT_GE(tolerant.num_evacuations, 1u);  // tier-2 adoption happened
  EXPECT_EQ(unforgiving.num_evacuations, 0u);
  EXPECT_GE(unforgiving.num_safe_mode_entries, 1u);
  EXPECT_GE(unforgiving.num_safe_mode_entries, tolerant.num_safe_mode_entries);
  EXPECT_LE(unforgiving.availability, tolerant.availability);
}

TEST(PermanentFaults, ZeroAlivePesRunsToCompletionInSafeMode) {
  dse::DesignDb db;
  db.add(make_point({0}, 90.0, 0.99, 30.0));  // single point, single PE
  DrcMatrix drc(1, {0});
  QosProcess qos(narrow_ranges());
  SimulationParams params;
  params.total_cycles = 1e4;
  RuntimeSimulator sim(params);

  flt::FaultScenario scenario;
  scenario.params.pe_mtbf = 100.0;  // the lone PE dies almost immediately
  scenario.seed = 3;

  UraPolicy policy(db, drc, 0.5);
  util::Rng rng(7);
  const auto stats = sim.run(db, policy, qos, rng, &scenario);

  EXPECT_EQ(stats.num_permanent_faults, 1u);
  EXPECT_EQ(stats.num_evacuations, 0u);
  EXPECT_EQ(stats.num_safe_mode_entries, 1u);
  EXPECT_LT(stats.availability, 1.0);
  EXPECT_GT(stats.downtime, 0.0);
  // Downtime is (at least) the whole post-fault remainder of the run.
  EXPECT_GT(stats.downtime, 0.5 * stats.total_cycles);
}

TEST(FaultDeterminism, SameSeedSameTimelineStatsAndTrace) {
  const auto db = degraded_db();
  const auto drc = two_point_drc();
  QosProcess qos(narrow_ranges());
  SimulationParams params;
  params.total_cycles = 2e4;
  params.trace_events = 100000;
  RuntimeSimulator sim(params);

  flt::FaultScenario scenario;
  scenario.params.transient_rate = 1e-3;
  scenario.params.pe_mtbf = 8e3;
  scenario.params.fallback_coverage = 0.7;
  scenario.seed = 21;

  UraPolicy p1(db, drc, 0.5);
  UraPolicy p2(db, drc, 0.5);
  util::Rng r1(55), r2(55);
  const auto a = sim.run(db, p1, qos, r1, &scenario);
  const auto b = sim.run(db, p2, qos, r2, &scenario);
  expect_same_stats(a, b);
}

TEST(FaultDeterminism, RunnerGridIsIdenticalAtAnyJobCount) {
  const auto db = degraded_db();
  const auto drc = two_point_drc();

  const auto run_grid = [&](std::size_t jobs) {
    exp::RunnerConfig config;
    config.replications = 3;
    config.jobs = jobs;
    config.keep_runs = true;
    exp::Runner runner(config);
    for (const auto kind : {exp::PolicyKind::Ura, exp::PolicyKind::Aura}) {
      exp::RunnerCell cell;
      cell.db = &db;
      cell.drc = &drc;
      cell.ranges = narrow_ranges();
      cell.params.kind = kind;
      cell.params.p_rc = 0.5;
      cell.params.sim.total_cycles = 1e4;
      cell.params.faults.transient_rate = 1e-3;
      cell.params.faults.pe_mtbf = 8e3;
      cell.params.faults.fallback_coverage = 0.6;
      cell.seed = 77;
      runner.add_cell(std::move(cell));
    }
    return runner.run();
  };

  const auto serial = run_grid(1);
  const auto parallel = run_grid(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t c = 0; c < serial.size(); ++c) {
    ASSERT_EQ(serial[c].runs.size(), parallel[c].runs.size());
    for (std::size_t r = 0; r < serial[c].runs.size(); ++r) {
      expect_same_stats(serial[c].runs[r], parallel[c].runs[r]);
    }
    EXPECT_DOUBLE_EQ(serial[c].stats.availability.mean, parallel[c].stats.availability.mean);
    EXPECT_DOUBLE_EQ(serial[c].stats.mttr.mean, parallel[c].stats.mttr.mean);
    EXPECT_DOUBLE_EQ(serial[c].stats.downtime.mean, parallel[c].stats.downtime.mean);
  }
}

TEST(FaultTrace, CsvCarriesFaultAndViolationColumns) {
  const auto db = degraded_db();
  const auto drc = two_point_drc();
  QosProcess qos(narrow_ranges());
  SimulationParams params;
  params.total_cycles = 2e4;
  params.trace_events = 100000;
  RuntimeSimulator sim(params);

  flt::FaultScenario scenario;
  scenario.params.transient_rate = 2e-3;
  scenario.params.pe_mtbf = 5e3;
  scenario.params.fallback_coverage = 0.5;
  scenario.seed = 19;

  UraPolicy policy(db, drc, 0.5);
  util::Rng rng(61);
  const auto stats = sim.run(db, policy, qos, rng, &scenario);
  const std::string csv = trace_to_csv(stats.trace);
  EXPECT_EQ(csv.rfind("time,point,drc,reconfigured,infeasible,fault,violation\n", 0), 0u);

  bool saw_transient = false, saw_permanent = false;
  for (const auto& ev : stats.trace) {
    saw_transient = saw_transient || ev.fault == flt::FaultKind::Transient;
    saw_permanent = saw_permanent || ev.fault == flt::FaultKind::Permanent;
  }
  EXPECT_TRUE(saw_transient);
  EXPECT_TRUE(saw_permanent);
  EXPECT_NE(csv.find(",1,"), std::string::npos);  // at least one fault column set
}

}  // namespace
}  // namespace clr::rt
