#include "runtime/qos_process.hpp"

#include <gtest/gtest.h>

namespace clr::rt {
namespace {

dse::MetricRanges make_ranges() {
  dse::MetricRanges r;
  r.makespan_min = 100.0;
  r.makespan_max = 200.0;
  r.func_rel_min = 0.90;
  r.func_rel_max = 0.99;
  r.energy_min = 10.0;
  r.energy_max = 20.0;
  return r;
}

TEST(QosProcess, SpecsStayWithinTheAchievableBox) {
  QosProcess qos(make_ranges());
  util::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const auto spec = qos.sample_spec(rng);
    EXPECT_GE(spec.max_makespan, 100.0);
    EXPECT_LE(spec.max_makespan, 200.0);
    EXPECT_GE(spec.min_func_rel, 0.90);
    EXPECT_LE(spec.min_func_rel, 0.99);
  }
}

TEST(QosProcess, MeansFollowTheFractionParameters) {
  QosProcessParams p;
  p.makespan_mean_frac = 0.5;
  p.func_rel_mean_frac = 0.5;
  p.makespan_sd_frac = 0.05;  // tight: clamping negligible
  p.func_rel_sd_frac = 0.05;
  QosProcess qos(make_ranges(), p);
  util::Rng rng(2);
  double s_sum = 0.0, f_sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto spec = qos.sample_spec(rng);
    s_sum += spec.max_makespan;
    f_sum += spec.min_func_rel;
  }
  EXPECT_NEAR(s_sum / n, 150.0, 0.5);
  EXPECT_NEAR(f_sum / n, 0.945, 0.001);
}

TEST(QosProcess, GapsAreExponentialWithConfiguredMean) {
  QosProcessParams p;
  p.mean_event_gap = 100.0;  // the paper's rate of 100 cycles
  QosProcess qos(make_ranges(), p);
  util::Rng rng(3);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double gap = qos.sample_gap(rng);
    EXPECT_GE(gap, 0.0);
    sum += gap;
  }
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(QosProcess, DeterministicPerSeed) {
  QosProcess qos(make_ranges());
  util::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    const auto sa = qos.sample_spec(a);
    const auto sb = qos.sample_spec(b);
    EXPECT_DOUBLE_EQ(sa.max_makespan, sb.max_makespan);
    EXPECT_DOUBLE_EQ(sa.min_func_rel, sb.min_func_rel);
  }
}

TEST(QosProcess, RejectsNonPositiveGap) {
  QosProcessParams p;
  p.mean_event_gap = 0.0;
  EXPECT_THROW(QosProcess(make_ranges(), p), std::invalid_argument);
}

TEST(QosProcess, DegenerateRangesStillWork) {
  dse::MetricRanges r = make_ranges();
  r.makespan_min = r.makespan_max = 150.0;
  r.func_rel_min = r.func_rel_max = 0.95;
  QosProcess qos(r);
  util::Rng rng(9);
  const auto spec = qos.sample_spec(rng);
  EXPECT_DOUBLE_EQ(spec.max_makespan, 150.0);
  EXPECT_DOUBLE_EQ(spec.min_func_rel, 0.95);
}

TEST(QosProcess, CorrelationPropagates) {
  QosProcessParams p;
  p.rho = 0.9;
  p.makespan_sd_frac = 0.10;
  p.func_rel_sd_frac = 0.10;
  QosProcess qos(make_ranges(), p);
  util::Rng rng(11);
  double sx = 0, sy = 0, sxy = 0, sx2 = 0, sy2 = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const auto spec = qos.sample_spec(rng);
    sx += spec.max_makespan;
    sy += spec.min_func_rel;
    sxy += spec.max_makespan * spec.min_func_rel;
    sx2 += spec.max_makespan * spec.max_makespan;
    sy2 += spec.min_func_rel * spec.min_func_rel;
  }
  const double mx = sx / n, my = sy / n;
  const double corr = (sxy / n - mx * my) /
                      std::sqrt((sx2 / n - mx * mx) * (sy2 / n - my * my));
  EXPECT_GT(corr, 0.7);  // clamping attenuates, but the sign/strength remains
}

TEST(QosProcessAr1, ChainIsReproduciblePerSeed) {
  QosProcess qos(make_ranges());
  util::Rng a(21), b(21);
  auto sa = qos.sample_spec(a);
  auto sb = qos.sample_spec(b);
  for (int i = 0; i < 200; ++i) {
    sa = qos.next_spec(sa, a);
    sb = qos.next_spec(sb, b);
    EXPECT_DOUBLE_EQ(sa.max_makespan, sb.max_makespan);
    EXPECT_DOUBLE_EQ(sa.min_func_rel, sb.min_func_rel);
  }
}

TEST(QosProcessAr1, StationaryMomentsMatchTheMarginalWithinCiBounds) {
  // The AR(1) chain is constructed so its stationary marginal equals the
  // i.i.d. sample_spec distribution: innovations scaled by sqrt(1 - phi²).
  // Long-run chain mean/sd must therefore match the marginal parameters.
  QosProcessParams p;
  p.makespan_mean_frac = 0.5;
  p.func_rel_mean_frac = 0.5;
  p.makespan_sd_frac = 0.05;  // tight: boundary clamping negligible
  p.func_rel_sd_frac = 0.05;
  p.ar1_phi = 0.6;
  QosProcess qos(make_ranges(), p);
  util::Rng rng(31);
  auto spec = qos.sample_spec(rng);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    spec = qos.next_spec(spec, rng);
    sum += spec.max_makespan;
    sum_sq += spec.max_makespan * spec.max_makespan;
  }
  const double mean = sum / n;
  const double sd = std::sqrt(sum_sq / n - mean * mean);
  // Marginal: mean 150, sd 5. The chain's effective sample size is reduced
  // by the autocorrelation (factor ~ (1+phi)/(1-phi) = 4), hence the wider
  // tolerance than the i.i.d. moment test above.
  EXPECT_NEAR(mean, 150.0, 1.0);
  EXPECT_NEAR(sd, 5.0, 0.5);
}

TEST(QosProcessAr1, Lag1AutocorrelationMatchesPhi) {
  QosProcessParams p;
  p.makespan_sd_frac = 0.05;
  p.func_rel_sd_frac = 0.05;
  p.ar1_phi = 0.7;
  QosProcess qos(make_ranges(), p);
  util::Rng rng(37);
  auto spec = qos.sample_spec(rng);
  double sum = 0.0, sum_sq = 0.0, sum_lag = 0.0, prev = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    spec = qos.next_spec(spec, rng);
    sum += spec.max_makespan;
    sum_sq += spec.max_makespan * spec.max_makespan;
    if (i > 0) sum_lag += prev * spec.max_makespan;
    prev = spec.max_makespan;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  const double cov = sum_lag / (n - 1) - mean * mean;
  EXPECT_NEAR(cov / var, 0.7, 0.05);
}

TEST(QosProcessAr1, ZeroPhiDegeneratesToIndependentDraws) {
  QosProcessParams p;
  p.ar1_phi = 0.0;
  QosProcess qos(make_ranges(), p);
  util::Rng a(41), b(41);
  // With phi = 0 the next spec must not depend on the previous one: stepping
  // from two different states under the same RNG stream yields the same draw.
  dse::QosSpec low, high;
  low.max_makespan = 100.0;
  low.min_func_rel = 0.90;
  high.max_makespan = 200.0;
  high.min_func_rel = 0.99;
  for (int i = 0; i < 50; ++i) {
    const auto from_low = qos.next_spec(low, a);
    const auto from_high = qos.next_spec(high, b);
    EXPECT_DOUBLE_EQ(from_low.max_makespan, from_high.max_makespan);
    EXPECT_DOUBLE_EQ(from_low.min_func_rel, from_high.min_func_rel);
  }
}

TEST(QosProcessAr1, StepsStayWithinTheAchievableBox) {
  QosProcess qos(make_ranges());
  util::Rng rng(43);
  auto spec = qos.sample_spec(rng);
  for (int i = 0; i < 5000; ++i) {
    spec = qos.next_spec(spec, rng);
    EXPECT_GE(spec.max_makespan, 100.0);
    EXPECT_LE(spec.max_makespan, 200.0);
    EXPECT_GE(spec.min_func_rel, 0.90);
    EXPECT_LE(spec.min_func_rel, 0.99);
  }
}

}  // namespace
}  // namespace clr::rt
