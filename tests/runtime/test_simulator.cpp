#include "runtime/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace clr::rt {
namespace {

dse::DesignDb make_db() {
  dse::DesignDb db;
  auto add = [&](double s, double f, double j, int tag) {
    dse::DesignPoint p;
    p.makespan = s;
    p.func_rel = f;
    p.energy = j;
    p.config.tasks.resize(1);
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(100, 0.95, 50, 0);
  add(120, 0.99, 80, 1);
  add(80, 0.92, 30, 2);
  return db;
}

DrcMatrix make_drc() {
  return DrcMatrix(3, {0, 10, 2,
                       10, 0, 10,
                       2, 10, 0});
}

dse::MetricRanges make_ranges() {
  dse::MetricRanges r;
  r.makespan_min = 80.0;
  r.makespan_max = 120.0;
  r.func_rel_min = 0.92;
  r.func_rel_max = 0.99;
  r.energy_min = 30.0;
  r.energy_max = 80.0;
  return r;
}

class SimulatorTest : public ::testing::Test {
 protected:
  dse::DesignDb db_ = make_db();
  DrcMatrix drc_ = make_drc();
  dse::MetricRanges ranges_ = make_ranges();
};

TEST_F(SimulatorTest, EnergyIsWithinDatabaseBounds) {
  QosProcess qos(ranges_);
  UraPolicy policy(db_, drc_, 0.5);
  SimulationParams params;
  params.total_cycles = 5e4;
  RuntimeSimulator sim(params);
  util::Rng rng(1);
  const auto stats = sim.run(db_, policy, qos, rng);
  EXPECT_GE(stats.avg_energy, 30.0);
  EXPECT_LE(stats.avg_energy, 80.0);
  EXPECT_DOUBLE_EQ(stats.total_cycles, 5e4);
}

TEST_F(SimulatorTest, EventCountMatchesExponentialRate) {
  QosProcess qos(ranges_);  // mean gap 100
  UraPolicy policy(db_, drc_, 0.5);
  SimulationParams params;
  params.total_cycles = 2e5;
  RuntimeSimulator sim(params);
  util::Rng rng(2);
  const auto stats = sim.run(db_, policy, qos, rng);
  // ~2000 events expected; Poisson sd ~45.
  EXPECT_GT(stats.num_events, 1800u);
  EXPECT_LT(stats.num_events, 2200u);
}

TEST_F(SimulatorTest, DeterministicPerSeed) {
  QosProcess qos(ranges_);
  SimulationParams params;
  params.total_cycles = 3e4;
  RuntimeSimulator sim(params);
  UraPolicy p1(db_, drc_, 0.5);
  UraPolicy p2(db_, drc_, 0.5);
  util::Rng a(3), b(3);
  const auto sa = sim.run(db_, p1, qos, a);
  const auto sb = sim.run(db_, p2, qos, b);
  EXPECT_EQ(sa.num_events, sb.num_events);
  EXPECT_EQ(sa.num_reconfigs, sb.num_reconfigs);
  EXPECT_DOUBLE_EQ(sa.avg_energy, sb.avg_energy);
  EXPECT_DOUBLE_EQ(sa.total_reconfig_cost, sb.total_reconfig_cost);
}

TEST_F(SimulatorTest, TraceRecordsFirstEvents) {
  QosProcess qos(ranges_);
  UraPolicy policy(db_, drc_, 0.5);
  SimulationParams params;
  params.total_cycles = 5e4;
  params.trace_events = 50;
  RuntimeSimulator sim(params);
  util::Rng rng(4);
  const auto stats = sim.run(db_, policy, qos, rng);
  ASSERT_EQ(stats.trace.size(), 50u);
  double prev = -1.0;
  for (const auto& ev : stats.trace) {
    EXPECT_GT(ev.time, prev);
    prev = ev.time;
    EXPECT_LT(ev.point, db_.size());
    if (!ev.reconfigured) EXPECT_DOUBLE_EQ(ev.drc, 0.0);
  }
}

TEST_F(SimulatorTest, AccountingIdentitiesHold) {
  QosProcess qos(ranges_);
  UraPolicy policy(db_, drc_, 1.0);
  SimulationParams params;
  params.total_cycles = 5e4;
  params.trace_events = 1000000;  // trace everything
  RuntimeSimulator sim(params);
  util::Rng rng(5);
  const auto stats = sim.run(db_, policy, qos, rng);
  ASSERT_EQ(stats.trace.size(), stats.num_events);
  double total_cost = 0.0;
  std::size_t reconfigs = 0;
  double max_drc = 0.0;
  for (const auto& ev : stats.trace) {
    total_cost += ev.drc;
    if (ev.reconfigured) ++reconfigs;
    max_drc = std::max(max_drc, ev.drc);
  }
  EXPECT_DOUBLE_EQ(total_cost, stats.total_reconfig_cost);
  EXPECT_EQ(reconfigs, stats.num_reconfigs);
  EXPECT_DOUBLE_EQ(max_drc, stats.max_drc);
  EXPECT_NEAR(stats.avg_reconfig_cost,
              stats.total_reconfig_cost / static_cast<double>(stats.num_events), 1e-12);
}

TEST_F(SimulatorTest, PrcZeroReconfiguresLessThanPrcOne) {
  QosProcess qos(ranges_);
  SimulationParams params;
  params.total_cycles = 1e5;
  RuntimeSimulator sim(params);
  UraPolicy sticky(db_, drc_, 0.0);
  UraPolicy greedy(db_, drc_, 1.0);
  util::Rng a(6), b(6);
  const auto s_sticky = sim.run(db_, sticky, qos, a);
  const auto s_greedy = sim.run(db_, greedy, qos, b);
  EXPECT_LE(s_sticky.total_reconfig_cost, s_greedy.total_reconfig_cost);
  // And the greedy policy buys at-least-as-good energy.
  EXPECT_LE(s_greedy.avg_energy, s_sticky.avg_energy + 1e-9);
}

TEST_F(SimulatorTest, AuraLearnsDuringSimulation) {
  QosProcess qos(ranges_);
  AuraPolicy policy(db_, drc_, 0.5);
  SimulationParams params;
  params.total_cycles = 5e4;
  RuntimeSimulator sim(params);
  util::Rng rng(7);
  sim.run(db_, policy, qos, rng);
  bool any_nonzero = false;
  for (double v : policy.values()) any_nonzero |= v != 0.0;
  EXPECT_TRUE(any_nonzero);
}

TEST_F(SimulatorTest, PretrainFreezesLearning) {
  QosProcess qos(ranges_);
  AuraPolicy policy(db_, drc_, 0.5);
  util::Rng rng(8);
  const auto values = pretrain_aura(policy, db_, qos, 1e4, 3, rng);
  EXPECT_EQ(values, policy.values());
  // Further simulation must not change values any more.
  SimulationParams params;
  params.total_cycles = 1e4;
  RuntimeSimulator sim(params);
  sim.run(db_, policy, qos, rng);
  EXPECT_EQ(policy.values(), values);
}

TEST_F(SimulatorTest, RejectsBadInputs) {
  QosProcess qos(ranges_);
  UraPolicy policy(db_, drc_, 0.5);
  SimulationParams params;
  params.total_cycles = 0.0;
  RuntimeSimulator sim(params);
  util::Rng rng(9);
  EXPECT_THROW(sim.run(db_, policy, qos, rng), std::invalid_argument);
  dse::DesignDb empty;
  RuntimeSimulator ok{};
  EXPECT_THROW(ok.run(empty, policy, qos, rng), std::invalid_argument);
}

TEST_F(SimulatorTest, InfeasibleEventsAreCounted) {
  // Shrink the feasible region: a QoS process biased to demand F near the
  // top of a range that only point 1 (sometimes nobody) satisfies.
  dse::MetricRanges tight = ranges_;
  tight.func_rel_min = 0.995;  // above every stored point
  tight.func_rel_max = 0.999;
  QosProcess qos(tight);
  UraPolicy policy(db_, drc_, 0.5);
  SimulationParams params;
  params.total_cycles = 2e4;
  RuntimeSimulator sim(params);
  util::Rng rng(10);
  const auto stats = sim.run(db_, policy, qos, rng);
  EXPECT_EQ(stats.num_infeasible_events, stats.num_events);
  EXPECT_GT(stats.num_events, 0u);
}

TEST_F(SimulatorTest, InitialPlacementIsNotLearnedFrom) {
  // Regression: the t=0 placement is free (the hint point was never occupied,
  // so no dRC was paid) and must not enter AuRA's episode. With the event gap
  // pushed past the horizon the run sees *only* the initial placement; after
  // it, every value and visit count must still be zero.
  QosProcessParams qos_params;
  qos_params.mean_event_gap = 1e9;  // no QoS-change events within the horizon
  QosProcess qos(ranges_, qos_params);
  AuraPolicy policy(db_, drc_, 0.5);
  SimulationParams params;
  params.total_cycles = 1e4;
  RuntimeSimulator sim(params);
  util::Rng rng(12);
  const auto stats = sim.run(db_, policy, qos, rng);
  ASSERT_EQ(stats.num_events, 0u);
  for (double v : policy.values()) EXPECT_DOUBLE_EQ(v, 0.0);
  for (std::size_t c : policy.visit_counts()) EXPECT_EQ(c, 0u);
}

TEST_F(SimulatorTest, CoincidentEpisodeAndEventProcessedOnce) {
  // Force now == next_episode == next_event at the first event and check the
  // event is neither dropped nor double-processed: a stateless (uRA) policy
  // must produce bit-identical stats whether or not episode boundaries land
  // exactly on event times (episode boundaries consume no randomness).
  QosProcess qos(ranges_);
  SimulationParams probe_params;
  probe_params.total_cycles = 5e4;
  probe_params.trace_events = 1;
  probe_params.episode_cycles = 1e18;  // no mid-run episodes
  RuntimeSimulator probe_sim(probe_params);
  UraPolicy probe_policy(db_, drc_, 0.5);
  util::Rng probe_rng(13);
  const auto probe = probe_sim.run(db_, probe_policy, qos, probe_rng);
  ASSERT_FALSE(probe.trace.empty());
  const double first_event_time = probe.trace[0].time;

  SimulationParams coincident_params = probe_params;
  coincident_params.trace_events = 1000000;
  coincident_params.episode_cycles = first_event_time;  // boundary ON the event
  RuntimeSimulator coincident_sim(coincident_params);
  UraPolicy p1(db_, drc_, 0.5);
  util::Rng rng1(13);
  const auto with_coincidence = coincident_sim.run(db_, p1, qos, rng1);

  SimulationParams control_params = coincident_params;
  control_params.episode_cycles = 1e18;
  RuntimeSimulator control_sim(control_params);
  UraPolicy p2(db_, drc_, 0.5);
  util::Rng rng2(13);
  const auto control = control_sim.run(db_, p2, qos, rng2);

  EXPECT_EQ(with_coincidence.num_events, control.num_events);
  EXPECT_EQ(with_coincidence.num_reconfigs, control.num_reconfigs);
  // Episode boundaries split the energy-integration interval, so the sum is
  // reassociated — everything else must be exact.
  EXPECT_NEAR(with_coincidence.avg_energy, control.avg_energy,
              1e-9 * control.avg_energy);
  EXPECT_DOUBLE_EQ(with_coincidence.total_reconfig_cost, control.total_reconfig_cost);
  ASSERT_EQ(with_coincidence.trace.size(), control.trace.size());
  for (std::size_t i = 0; i < control.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_coincidence.trace[i].time, control.trace[i].time);
    EXPECT_EQ(with_coincidence.trace[i].point, control.trace[i].point);
  }
}

TEST_F(SimulatorTest, SimulatorAndQosProcessReuseLeaksNoStateAcrossRuns) {
  // The fleet pipeline constructs ONE QosProcess + RuntimeSimulator per
  // worker and reuses them for every device (DESIGN.md §5.13). That is only
  // sound if run() is a pure function of (db, policy, rng, scenario) — all
  // mutable evaluation state must live inside the call. Interleave seeds
  // A, B, A on one shared plant and compare run 1 vs run 3 bitwise, then
  // compare both against a factory-fresh plant.
  SimulationParams params;
  params.total_cycles = 2e4;
  const RuntimeSimulator shared_sim(params);
  const QosProcess shared_qos(ranges_);

  const auto run_with = [&](const RuntimeSimulator& sim, const QosProcess& qos,
                            std::uint64_t seed) {
    UraPolicy policy(db_, drc_, 0.5);  // policies are per-device in the fleet too
    util::Rng rng(seed);
    return sim.run(db_, policy, qos, rng);
  };

  const auto first = run_with(shared_sim, shared_qos, 101);
  const auto other = run_with(shared_sim, shared_qos, 202);
  const auto again = run_with(shared_sim, shared_qos, 101);

  EXPECT_EQ(first.num_events, again.num_events);
  EXPECT_EQ(first.num_reconfigs, again.num_reconfigs);
  EXPECT_EQ(first.num_infeasible_events, again.num_infeasible_events);
  EXPECT_EQ(first.avg_energy, again.avg_energy);
  EXPECT_EQ(first.total_reconfig_cost, again.total_reconfig_cost);
  EXPECT_EQ(first.qos_violation_time, again.qos_violation_time);
  EXPECT_EQ(first.availability, again.availability);
  EXPECT_EQ(first.max_drc, again.max_drc);
  // The interleaved run actually differed (the check above is not vacuous).
  // A continuous metric cannot collide across seeds the way a count could.
  EXPECT_NE(first.qos_violation_time, other.qos_violation_time);

  const RuntimeSimulator fresh_sim(params);
  const QosProcess fresh_qos(ranges_);
  const auto pristine = run_with(fresh_sim, fresh_qos, 101);
  EXPECT_EQ(first.num_events, pristine.num_events);
  EXPECT_EQ(first.avg_energy, pristine.avg_energy);
  EXPECT_EQ(first.qos_violation_time, pristine.qos_violation_time);
  EXPECT_EQ(first.max_drc, pristine.max_drc);
}

TEST_F(SimulatorTest, TraceExportsToCsv) {
  QosProcess qos(ranges_);
  UraPolicy policy(db_, drc_, 0.5);
  SimulationParams params;
  params.total_cycles = 1e4;
  params.trace_events = 10;
  RuntimeSimulator sim(params);
  util::Rng rng(11);
  const auto stats = sim.run(db_, policy, qos, rng);
  const std::string csv = rt::trace_to_csv(stats.trace);
  EXPECT_EQ(csv.rfind("time,point,drc,reconfigured,infeasible,fault,violation\n", 0), 0u);
  // Fault-free run: every row carries fault kind 0 (None).
  EXPECT_EQ(csv.find(",1,1\n"), std::string::npos);
  // Header + one line per traced event.
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), stats.trace.size() + 1);
}

}  // namespace
}  // namespace clr::rt
