// Tests for the run-time extensions: AR(1) QoS drift, AuRA's guarded
// lookahead / visit accounting / unvisited-state neutralization, and the
// dRC-matrix scale accessor.

#include <gtest/gtest.h>

#include "runtime/policy.hpp"
#include "runtime/qos_process.hpp"
#include "runtime/simulator.hpp"

namespace clr::rt {
namespace {

dse::MetricRanges make_ranges() {
  dse::MetricRanges r;
  r.makespan_min = 100.0;
  r.makespan_max = 200.0;
  r.func_rel_min = 0.90;
  r.func_rel_max = 0.99;
  r.energy_min = 10.0;
  r.energy_max = 20.0;
  return r;
}

TEST(QosDrift, PhiZeroMatchesStationarySampling) {
  QosProcessParams p;
  p.ar1_phi = 0.0;
  QosProcess qos(make_ranges(), p);
  util::Rng a(1), b(1);
  const dse::QosSpec prev{150.0, 0.95};
  for (int i = 0; i < 50; ++i) {
    const auto from_next = qos.next_spec(prev, a);
    const auto from_sample = qos.sample_spec(b);
    EXPECT_DOUBLE_EQ(from_next.max_makespan, from_sample.max_makespan);
    EXPECT_DOUBLE_EQ(from_next.min_func_rel, from_sample.min_func_rel);
  }
}

TEST(QosDrift, NextSpecStaysInBox) {
  QosProcessParams p;
  p.ar1_phi = 0.9;
  QosProcess qos(make_ranges(), p);
  util::Rng rng(2);
  dse::QosSpec spec = qos.sample_spec(rng);
  for (int i = 0; i < 2000; ++i) {
    spec = qos.next_spec(spec, rng);
    EXPECT_GE(spec.max_makespan, 100.0);
    EXPECT_LE(spec.max_makespan, 200.0);
    EXPECT_GE(spec.min_func_rel, 0.90);
    EXPECT_LE(spec.min_func_rel, 0.99);
  }
}

TEST(QosDrift, HighPhiProducesAutocorrelatedSequence) {
  QosProcessParams drifty;
  drifty.ar1_phi = 0.9;
  QosProcessParams jumpy;
  jumpy.ar1_phi = 0.0;
  QosProcess qd(make_ranges(), drifty);
  QosProcess qj(make_ranges(), jumpy);
  auto mean_abs_step = [](QosProcess& q, util::Rng rng) {
    dse::QosSpec spec = q.sample_spec(rng);
    double sum = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
      const auto next = q.next_spec(spec, rng);
      sum += std::abs(next.max_makespan - spec.max_makespan);
      spec = next;
    }
    return sum / n;
  };
  // Drifting sequences take much smaller steps than independent draws.
  EXPECT_LT(mean_abs_step(qd, util::Rng(3)), 0.6 * mean_abs_step(qj, util::Rng(3)));
}

TEST(QosDrift, StationaryMarginalIsPreserved) {
  QosProcessParams p;
  p.ar1_phi = 0.7;
  p.makespan_sd_frac = 0.10;  // little clamping
  QosProcess qos(make_ranges(), p);
  util::Rng rng(4);
  dse::QosSpec spec = qos.sample_spec(rng);
  double sum = 0.0, sum2 = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    spec = qos.next_spec(spec, rng);
    sum += spec.max_makespan;
    sum2 += spec.max_makespan * spec.max_makespan;
  }
  const double mean = sum / n;
  // Stationary mean = makespan_min + 0.45 * range = 145 (default mean frac).
  EXPECT_NEAR(mean, 145.0, 1.0);
  // Stationary sd should approximate the marginal sd (10), not be inflated.
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 10.0, 1.0);
}

// --- AuRA mechanics -------------------------------------------------------

dse::DesignDb small_db() {
  dse::DesignDb db;
  auto add = [&](double s, double f, double j, int tag) {
    dse::DesignPoint p;
    p.makespan = s;
    p.func_rel = f;
    p.energy = j;
    p.config.tasks.resize(1);
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(100, 0.95, 50, 0);
  add(120, 0.99, 80, 1);
  add(80, 0.92, 30, 2);
  return db;
}

DrcMatrix small_drc() {
  return DrcMatrix(3, {0, 10, 2, 10, 0, 10, 2, 10, 0});
}

TEST(DrcMatrixExt, MaxDrc) {
  EXPECT_DOUBLE_EQ(small_drc().max_drc(), 10.0);
  EXPECT_DOUBLE_EQ(DrcMatrix(1, {0.0}).max_drc(), 0.0);
}

TEST(AuraGuard, DefaultGuardNeverDegradesImmediateChoice) {
  const auto db = small_db();
  const auto drc = small_drc();
  AuraPolicy aura(db, drc, 0.0);  // default guard 0: tie-breaking only
  aura.set_values({0.0, 100.0, 0.0});
  // Current point 0 is feasible: staying (dRC 0) strictly beats any move;
  // even an enormous V(1) cannot pull the agent off it.
  const auto d = aura.select(0, dse::QosSpec{200.0, 0.0});
  EXPECT_EQ(d.point, 0u);
}

TEST(AuraGuard, WideGuardAllowsValueOverride) {
  const auto db = small_db();
  const auto drc = small_drc();
  AuraPolicy::Params params;
  params.gamma = 0.9;
  params.guard = 10.0;
  AuraPolicy aura(db, drc, 0.0, params);
  aura.set_values({0.0, 100.0, 0.0});
  const auto d = aura.select(0, dse::QosSpec{200.0, 0.0});
  EXPECT_EQ(d.point, 1u);  // pays the move because V says so
}

TEST(AuraVisits, CountedPerEpisodeUpdate) {
  const auto db = small_db();
  const auto drc = small_drc();
  AuraPolicy aura(db, drc, 1.0);
  aura.select(0, dse::QosSpec{200.0, 0.0});  // picks 2 (min energy)
  aura.select(2, dse::QosSpec{200.0, 0.0});
  EXPECT_EQ(aura.visit_counts()[2], 0u);  // not yet: updates land at episode end
  aura.end_episode();
  EXPECT_EQ(aura.visit_counts()[2], 2u);
  EXPECT_EQ(aura.visit_counts()[0], 0u);
}

TEST(AuraNeutralize, UnvisitedGetMeanOfVisited) {
  const auto db = small_db();
  const auto drc = small_drc();
  AuraPolicy::Params params;
  params.alpha = 1.0;
  params.gamma = 0.5;
  AuraPolicy aura(db, drc, 1.0, params);
  aura.select(0, dse::QosSpec{200.0, 0.0});  // reward 1 at point 2
  aura.end_episode();                        // V[2] = 1
  aura.neutralize_unvisited();
  EXPECT_DOUBLE_EQ(aura.values()[0], 1.0);
  EXPECT_DOUBLE_EQ(aura.values()[1], 1.0);
  EXPECT_DOUBLE_EQ(aura.values()[2], 1.0);
}

TEST(AuraNeutralize, NoOpWhenNothingVisited) {
  const auto db = small_db();
  const auto drc = small_drc();
  AuraPolicy aura(db, drc, 0.5);
  aura.neutralize_unvisited();
  for (double v : aura.values()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(AuraReward, GlobalScaleIsStationary) {
  // The reward for picking the same point with the same paid cost must not
  // depend on which other points happen to be feasible.
  const auto db = small_db();
  const auto drc = small_drc();
  UraPolicy policy(db, drc, 1.0);
  // Loose spec (3 candidates) and tight spec (only point 1 feasible): point 1
  // selected in the tight case gets its global normalized reward, not 1.0.
  const auto tight = policy.select(1, dse::QosSpec{200.0, 0.99});
  EXPECT_EQ(tight.point, 1u);
  // Point 1 has max energy: global norm R = 0; staying costs nothing.
  EXPECT_DOUBLE_EQ(tight.reward, 0.0);
}

TEST(SimulatorDrift, AutocorrelatedRunsAreDeterministic) {
  const auto db = small_db();
  const auto drc = small_drc();
  QosProcessParams p;
  p.ar1_phi = 0.8;
  QosProcess qos(make_ranges(), p);
  SimulationParams sp;
  sp.total_cycles = 3e4;
  RuntimeSimulator sim(sp);
  UraPolicy p1(db, drc, 0.5), p2(db, drc, 0.5);
  util::Rng a(9), b(9);
  const auto sa = sim.run(db, p1, qos, a);
  const auto sb = sim.run(db, p2, qos, b);
  EXPECT_EQ(sa.num_reconfigs, sb.num_reconfigs);
  EXPECT_DOUBLE_EQ(sa.avg_energy, sb.avg_energy);
}

}  // namespace
}  // namespace clr::rt
