// Prefetch transparency + reconfiguration-port accounting (DESIGN.md §5.14).
//
// The load-bearing contract: wrapping any policy in rt::PrefetchPolicy NEVER
// changes which points are picked — speculation may only re-split
// total_reconfig_cost into stalled and hidden time. That makes the strongest
// possible differential test available: every pre-existing RuntimeStats
// field must be bit-identical with prefetch on and off, across policy kinds,
// seeds and fault regimes, while the port invariant
//
//   total_reconfig_cost == reconfig_stall_time + prefetch_hidden_time
//
// holds on both sides (with hidden == 0 exactly when prefetch is off).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "experiments/flow.hpp"
#include "runtime/prefetch.hpp"
#include "sim/icap.hpp"

namespace clr::rt {
namespace {

dse::DesignDb make_db() {
  dse::DesignDb db;
  auto add = [&](double s, double f, double j, int tag) {
    dse::DesignPoint p;
    p.makespan = s;
    p.func_rel = f;
    p.energy = j;
    p.config.tasks.resize(1);
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(100, 0.95, 50, 0);
  add(120, 0.99, 80, 1);
  add(80, 0.92, 30, 2);
  return db;
}

DrcMatrix make_drc() {
  return DrcMatrix(3, {0, 10, 2,
                       10, 0, 10,
                       2, 10, 0});
}

dse::MetricRanges make_ranges() {
  dse::MetricRanges r;
  r.makespan_min = 80.0;
  r.makespan_max = 120.0;
  r.func_rel_min = 0.92;
  r.func_rel_max = 0.99;
  r.energy_min = 30.0;
  r.energy_max = 80.0;
  return r;
}

/// Every RuntimeStats field that existed before the reconfiguration-port
/// model. Bit-exact equality — EXPECT_EQ on doubles, not EXPECT_NEAR.
void expect_pre_port_fields_identical(const RuntimeStats& a, const RuntimeStats& b) {
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.num_events, b.num_events);
  EXPECT_EQ(a.num_reconfigs, b.num_reconfigs);
  EXPECT_EQ(a.num_infeasible_events, b.num_infeasible_events);
  EXPECT_EQ(a.avg_energy, b.avg_energy);
  EXPECT_EQ(a.total_reconfig_cost, b.total_reconfig_cost);
  EXPECT_EQ(a.avg_reconfig_cost, b.avg_reconfig_cost);
  EXPECT_EQ(a.max_drc, b.max_drc);
  EXPECT_EQ(a.qos_violation_time, b.qos_violation_time);
  EXPECT_EQ(a.num_transient_faults, b.num_transient_faults);
  EXPECT_EQ(a.num_recovered_transients, b.num_recovered_transients);
  EXPECT_EQ(a.num_unrecovered_failures, b.num_unrecovered_failures);
  EXPECT_EQ(a.num_permanent_faults, b.num_permanent_faults);
  EXPECT_EQ(a.num_evacuations, b.num_evacuations);
  EXPECT_EQ(a.num_safe_mode_entries, b.num_safe_mode_entries);
  EXPECT_EQ(a.downtime, b.downtime);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.mttr, b.mttr);
}

void expect_port_invariant(const RuntimeStats& s) {
  // The split must reassemble the folded cost exactly: both sides accumulate
  // the same addends in the same order.
  EXPECT_EQ(s.reconfig_stall_time + s.prefetch_hidden_time, s.total_reconfig_cost);
  EXPECT_GE(s.reconfig_stall_time, 0.0);
  EXPECT_GE(s.prefetch_hidden_time, 0.0);
  const double expected_availability =
      std::clamp(1.0 - (s.downtime + s.reconfig_stall_time) / s.total_cycles, 0.0, 1.0);
  EXPECT_EQ(s.service_availability, expected_availability);
}

// --- IcapPort unit contract ---

TEST(IcapPort, StagedProgressIsHiddenCappedByRealDuration) {
  sim::IcapPort port;
  port.stage(/*target=*/1, /*duration=*/10.0, /*now=*/100.0);
  // 6 cycles later the staged load has 6 cycles of progress.
  const auto c = port.consume(1, 10.0, 106.0);
  EXPECT_TRUE(c.hit);
  EXPECT_DOUBLE_EQ(c.hidden, 6.0);
  EXPECT_FALSE(port.has_staged());
}

TEST(IcapPort, FullyLoadedStageHidesTheWholeReconfiguration) {
  sim::IcapPort port;
  port.stage(2, 10.0, 0.0);
  const auto c = port.consume(2, 10.0, 50.0);
  EXPECT_TRUE(c.hit);
  EXPECT_DOUBLE_EQ(c.hidden, 10.0);
}

TEST(IcapPort, MispredictionYieldsNoCreditAndCancelsTheStage) {
  sim::IcapPort port;
  port.stage(1, 10.0, 0.0);
  const auto c = port.consume(2, 8.0, 50.0);
  EXPECT_FALSE(c.hit);
  EXPECT_DOUBLE_EQ(c.hidden, 0.0);
  EXPECT_FALSE(port.has_staged());  // cancel-on-mispredict frees the port
}

TEST(IcapPort, SinglePortSerializesStagedLoads) {
  sim::IcapPort port;
  port.stage(1, 10.0, 0.0);   // occupies the port over [0, 10)
  port.stage(2, 10.0, 4.0);   // must wait: starts at 10, not 4
  // At t=12 the second load has only 2 cycles of progress.
  const auto c = port.consume(2, 10.0, 12.0);
  EXPECT_TRUE(c.hit);
  EXPECT_DOUBLE_EQ(c.hidden, 2.0);
}

TEST(IcapPort, CancelAllDropsEverySpeculativeLoad) {
  sim::IcapPort port;
  port.stage(1, 10.0, 0.0);
  port.stage(2, 5.0, 1.0);
  EXPECT_EQ(port.queued(), 2u);
  port.cancel_all();
  EXPECT_FALSE(port.has_staged());
  const auto c = port.consume(1, 10.0, 100.0);
  EXPECT_FALSE(c.hit);
  EXPECT_DOUBLE_EQ(c.hidden, 0.0);
}

// --- TrendPredictor ---

TEST(TrendPredictor, RecoversTheAr1DriftFactorFromObservations) {
  // Deterministic AR(1) with phi = 0.6 around mean 100 (makespan) / 0.95
  // (func_rel), driven by seeded white-noise innovations. (A short periodic
  // innovation pattern would not do: its own lag-1 autocorrelation leaks
  // into the estimate, which measures the series, not the driver.)
  TrendPredictor predictor;
  util::Rng rng(19);
  double m = 100.0, f = 0.95;
  for (int round = 0; round < 4000; ++round) {
    const double e = rng.normal(0.0, 3.0);
    m = 100.0 + 0.6 * (m - 100.0) + e;
    f = 0.95 + 0.6 * (f - 0.95) + e * 0.001;
    dse::QosSpec spec;
    spec.max_makespan = m;
    spec.min_func_rel = f;
    predictor.observe(spec);
  }
  EXPECT_NEAR(predictor.phi_makespan(), 0.6, 0.1);
  EXPECT_NEAR(predictor.phi_func_rel(), 0.6, 0.1);
  // The prediction is the closed-form one-step AR(1) extrapolation.
  const auto p = predictor.predict();
  EXPECT_TRUE(std::isfinite(p.max_makespan));
  EXPECT_TRUE(std::isfinite(p.min_func_rel));
}

TEST(TrendPredictor, ConstantSeriesPredictsItselfWithZeroPhi) {
  TrendPredictor predictor;
  for (int i = 0; i < 16; ++i) {
    dse::QosSpec spec;
    spec.max_makespan = 110.0;
    spec.min_func_rel = 0.97;
    predictor.observe(spec);
  }
  EXPECT_DOUBLE_EQ(predictor.phi_makespan(), 0.0);  // zero variance guard
  const auto p = predictor.predict();
  EXPECT_DOUBLE_EQ(p.max_makespan, 110.0);
  EXPECT_DOUBLE_EQ(p.min_func_rel, 0.97);
}

// --- End-to-end transparency differentials ---

class PrefetchDifferential : public ::testing::TestWithParam<exp::PolicyKind> {
 protected:
  dse::DesignDb db_ = make_db();
  DrcMatrix drc_ = make_drc();
  dse::MetricRanges ranges_ = make_ranges();
};

TEST_P(PrefetchDifferential, PrefetchNeverChangesAnyPrePortField) {
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    exp::RuntimeEvalParams params;
    params.kind = GetParam();
    params.sim.total_cycles = 3e4;
    params.prefetch = false;
    const auto off = exp::evaluate_policy_with(db_, drc_, ranges_, params, seed);
    params.prefetch = true;
    const auto on = exp::evaluate_policy_with(db_, drc_, ranges_, params, seed);
    expect_pre_port_fields_identical(off, on);
    expect_port_invariant(off);
    expect_port_invariant(on);
    // Off: nothing was staged, so every reconfiguration stalled in full.
    EXPECT_EQ(off.prefetch_hidden_time, 0.0);
    EXPECT_EQ(off.reconfig_stall_time, off.total_reconfig_cost);
    EXPECT_EQ(off.prefetch_hits + off.prefetch_misses, 0u);
  }
}

TEST_P(PrefetchDifferential, PrefetchTransparencyHoldsUnderFaultInjection) {
  exp::RuntimeEvalParams params;
  params.kind = GetParam();
  params.sim.total_cycles = 3e4;
  params.faults.transient_rate = 5e-6;
  params.faults.pe_mtbf = 5e5;
  params.prefetch = false;
  const auto off = exp::evaluate_policy_with(db_, drc_, ranges_, params, 42);
  params.prefetch = true;
  const auto on = exp::evaluate_policy_with(db_, drc_, ranges_, params, 42);
  expect_pre_port_fields_identical(off, on);
  expect_port_invariant(off);
  expect_port_invariant(on);
}

INSTANTIATE_TEST_SUITE_P(Policies, PrefetchDifferential,
                         ::testing::Values(exp::PolicyKind::Baseline, exp::PolicyKind::Ura,
                                           exp::PolicyKind::Aura, exp::PolicyKind::Mdp),
                         [](const auto& info) {
                           switch (info.param) {
                             case exp::PolicyKind::Baseline: return "Baseline";
                             case exp::PolicyKind::Ura: return "Ura";
                             case exp::PolicyKind::Aura: return "Aura";
                             case exp::PolicyKind::Mdp: return "Mdp";
                           }
                           return "Unknown";
                         });

TEST(PrefetchDeterminism, RepeatedRunsAreBitIdentical) {
  const dse::DesignDb db = make_db();
  const DrcMatrix drc = make_drc();
  exp::RuntimeEvalParams params;
  params.kind = exp::PolicyKind::Aura;
  params.sim.total_cycles = 2e4;
  params.prefetch = true;
  const auto a = exp::evaluate_policy_with(db, drc, make_ranges(), params, 9);
  const auto b = exp::evaluate_policy_with(db, drc, make_ranges(), params, 9);
  expect_pre_port_fields_identical(a, b);
  EXPECT_EQ(a.reconfig_stall_time, b.reconfig_stall_time);
  EXPECT_EQ(a.prefetch_hidden_time, b.prefetch_hidden_time);
  EXPECT_EQ(a.prefetch_hits, b.prefetch_hits);
  EXPECT_EQ(a.prefetch_misses, b.prefetch_misses);
  EXPECT_EQ(a.service_availability, b.service_availability);
}

TEST(PrefetchDeterminism, PrefetchEventuallyHidesLatencyOnAPredictableProcess) {
  // With a strongly autocorrelated QoS process and a long horizon the
  // predictor must land at least some hits — otherwise the wrapper is dead
  // code and the "availability uplift" claim is vacuous.
  const dse::DesignDb db = make_db();
  const DrcMatrix drc = make_drc();
  exp::RuntimeEvalParams params;
  params.kind = exp::PolicyKind::Ura;
  params.sim.total_cycles = 2e5;
  params.qos.ar1_phi = 0.9;
  params.prefetch = true;
  const auto stats = exp::evaluate_policy_with(db, drc, make_ranges(), params, 3);
  EXPECT_GT(stats.prefetch_hits, 0u);
  EXPECT_GT(stats.prefetch_hidden_time, 0.0);
  EXPECT_LT(stats.reconfig_stall_time, stats.total_reconfig_cost);
  EXPECT_GE(stats.service_availability,
            std::clamp(1.0 - (stats.downtime + stats.total_reconfig_cost) / stats.total_cycles,
                       0.0, 1.0));
}

// --- Mdp policy + shared-table equivalence ---

TEST(MdpPolicyRuntime, SharedTableAndPerRunRebuildAreBitIdentical) {
  const dse::DesignDb db = make_db();
  const DrcMatrix drc = make_drc();
  const dse::MetricRanges ranges = make_ranges();
  exp::RuntimeEvalParams params;
  params.kind = exp::PolicyKind::Mdp;
  params.sim.total_cycles = 2e4;
  const MdpTable table =
      build_mdp_table(db, drc, ranges, params.p_rc, params.qos, params.faults, params.mdp);
  const auto rebuilt = exp::evaluate_policy_with(db, drc, ranges, params, 11);
  const auto shared = exp::evaluate_policy_with(db, drc, ranges, params, 11, nullptr, &table);
  expect_pre_port_fields_identical(rebuilt, shared);
  EXPECT_EQ(rebuilt.reconfig_stall_time, shared.reconfig_stall_time);
  EXPECT_EQ(rebuilt.service_availability, shared.service_availability);
}

TEST(MdpPolicyRuntime, TableLookupRespectsFeasibilityAndStaysInRange) {
  const dse::DesignDb db = make_db();
  const DrcMatrix drc = make_drc();
  const dse::MetricRanges ranges = make_ranges();
  exp::RuntimeEvalParams params;
  const MdpTable table =
      build_mdp_table(db, drc, ranges, 0.5, params.qos, params.faults, params.mdp);
  ASSERT_EQ(table.num_points, db.size());
  ASSERT_EQ(table.policy.size(), table.num_states());
  for (const std::uint32_t a : table.policy) EXPECT_LT(a, db.size());

  MdpPolicy policy(db, drc, table);
  dse::QosSpec spec;
  spec.max_makespan = 105.0;
  spec.min_func_rel = 0.94;
  const auto d = policy.select(0, spec);
  EXPECT_LT(d.point, db.size());
  // peek must match select exactly (both are the same pure decision rule)
  // and leave no episode state behind.
  const auto p = policy.peek(0, spec);
  EXPECT_EQ(p.point, d.point);
}

}  // namespace
}  // namespace clr::rt
