// Exhaustive small-instance oracle for the MDP solvers (DESIGN.md §5.14).
//
// The optimality claim behind rt::MdpPolicy is proven here the strong way:
// on fuzzed tiny instances every policy is enumerated and scored by the SAME
// exact evaluation routine that scores the solver's policy, so "the solver is
// optimal" is a bit-exact comparison against a brute-force maximum — not a
// tolerance check against a reimplementation that could share a bug.
//
//   - finite horizon: ALL (possibly non-stationary) action sequences are
//     enumerated and evaluate_finite_horizon_policy-scored; backward
//     induction must attain the enumerated maximum exactly;
//   - infinite horizon: all stationary deterministic policies are enumerated
//     and evaluate_stationary_policy-scored; the value-iteration and
//     policy-iteration policies must attain the per-state maximum exactly
//     (an optimal policy maximizes the value in every state simultaneously);
//   - the converged Bellman residual is independently recomputed and checked
//     against the solver's tolerance;
//   - Gauss-Seidel sweep order (Forward vs Reverse) must not change the
//     fixed point reached.
//
// Rewards are continuous uniform draws, so distinct policies are separated
// by gaps many orders of magnitude above double rounding — exact ties that
// would make bit-exact maxima flaky are measure-zero by construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "runtime/mdp.hpp"

namespace clr::rt {
namespace {

/// A random dense-as-sparse MDP: every (s, a) gets its own stochastic row
/// over all states (some instances share rows across states to exercise the
/// row_of indirection), rewards uniform in [-1, 1], and roughly a third of
/// the instances carry a non-trivial action mask.
Mdp fuzz_mdp(util::Rng& rng, std::size_t num_states, std::size_t num_actions) {
  Mdp mdp;
  mdp.num_states = num_states;
  mdp.num_actions = num_actions;
  const bool share_rows = rng.chance(0.33);
  // Shared mode mirrors the production binding: the row depends only on the
  // action, so all states point at the same num_actions rows.
  const std::size_t distinct = share_rows ? num_actions : num_states * num_actions;
  for (std::size_t r = 0; r < distinct; ++r) {
    MdpRow row;
    double sum = 0.0;
    for (std::uint32_t next = 0; next < num_states; ++next) {
      const double w = rng.uniform(0.05, 1.0);
      row.emplace_back(next, w);
      sum += w;
    }
    for (auto& e : row) e.second /= sum;
    mdp.rows.push_back(std::move(row));
  }
  mdp.row_of.resize(num_states * num_actions);
  for (std::size_t s = 0; s < num_states; ++s) {
    for (std::size_t a = 0; a < num_actions; ++a) {
      mdp.row_of[s * num_actions + a] =
          static_cast<std::uint32_t>(share_rows ? a : s * num_actions + a);
    }
  }
  mdp.reward.resize(num_states * num_actions);
  for (double& r : mdp.reward) r = rng.uniform(-1.0, 1.0);
  if (rng.chance(0.33)) {
    mdp.allowed.assign(num_states * num_actions, 1);
    for (std::size_t s = 0; s < num_states; ++s) {
      // Forbid a random strict subset so every state keeps >= 1 action.
      const std::size_t keep = rng.index(num_actions);
      for (std::size_t a = 0; a < num_actions; ++a) {
        if (a != keep && rng.chance(0.3)) mdp.allowed[s * num_actions + a] = 0;
      }
    }
  }
  mdp.validate();
  return mdp;
}

/// Allowed actions per state, the enumeration alphabet.
std::vector<std::vector<std::uint32_t>> allowed_actions(const Mdp& mdp) {
  std::vector<std::vector<std::uint32_t>> per_state(mdp.num_states);
  for (std::size_t s = 0; s < mdp.num_states; ++s) {
    for (std::size_t a = 0; a < mdp.num_actions; ++a) {
      if (mdp.action_allowed(s, a)) per_state[s].push_back(static_cast<std::uint32_t>(a));
    }
  }
  return per_state;
}

/// Number of distinct stationary deterministic policies (product of the
/// per-state allowed counts).
std::uint64_t stationary_count(const std::vector<std::vector<std::uint32_t>>& per_state) {
  std::uint64_t n = 1;
  for (const auto& actions : per_state) n *= actions.size();
  return n;
}

/// The i-th stationary policy in mixed-radix order over the allowed sets.
std::vector<std::uint32_t> nth_stationary(
    const std::vector<std::vector<std::uint32_t>>& per_state, std::uint64_t i) {
  std::vector<std::uint32_t> policy(per_state.size());
  for (std::size_t s = 0; s < per_state.size(); ++s) {
    policy[s] = per_state[s][i % per_state[s].size()];
    i /= per_state[s].size();
  }
  return policy;
}

TEST(MdpOracle, BackwardInductionAttainsTheExhaustiveFiniteHorizonOptimumExactly) {
  util::Rng rng(20260808);
  int instances = 0;
  // >= 50 fuzzed instances; the horizon shrinks as the per-step policy count
  // grows so the full (A^S)^H non-stationary enumeration stays ~<= 20000.
  while (instances < 56) {
    const std::size_t S = static_cast<std::size_t>(rng.uniform_int(2, 6));
    const std::size_t A = static_cast<std::size_t>(rng.uniform_int(2, 4));
    const Mdp mdp = fuzz_mdp(rng, S, A);
    const auto per_state = allowed_actions(mdp);
    const std::uint64_t per_step = stationary_count(per_state);
    std::size_t horizon = 1;
    std::uint64_t total = per_step;
    while (horizon < 4 && total * per_step <= 20000) {
      ++horizon;
      total *= per_step;
    }
    ++instances;

    // Uniform start distribution: optimality must hold from every state, so
    // a mixture catches a solver wrong in any of them.
    const std::vector<double> initial(S, 1.0 / static_cast<double>(S));

    // Enumerate EVERY non-stationary policy (an independent stationary map
    // per step) — for a finite MDP this sweeps the whole deterministic
    // policy space, Markov policies being sufficient for optimality.
    double best = -std::numeric_limits<double>::infinity();
    std::vector<std::vector<std::uint32_t>> candidate(horizon);
    for (std::uint64_t code = 0; code < total; ++code) {
      std::uint64_t c = code;
      for (std::size_t t = 0; t < horizon; ++t) {
        candidate[t] = nth_stationary(per_state, c % per_step);
        c /= per_step;
      }
      best = std::max(best, evaluate_finite_horizon_policy(mdp, candidate, initial));
    }

    const FiniteHorizonSolution solved = solve_finite_horizon(mdp, horizon);
    const double solver_score = evaluate_finite_horizon_policy(mdp, solved.policy, initial);
    // Bit-exact: the solver's policy is inside the enumerated set and both
    // sides are scored by the same routine, so any suboptimality — even one
    // ulp — fails here.
    EXPECT_EQ(solver_score, best)
        << "instance " << instances << " (S=" << S << " A=" << A << " H=" << horizon << ")";

    // The solver's own value function must agree with its policy's exact
    // score state-by-state (start distribution concentrated on s).
    for (std::size_t s = 0; s < S; ++s) {
      std::vector<double> delta(S, 0.0);
      delta[s] = 1.0;
      EXPECT_NEAR(evaluate_finite_horizon_policy(mdp, solved.policy, delta), solved.value[s],
                  1e-12 * (1.0 + std::abs(solved.value[s])));
    }
  }
  EXPECT_GE(instances, 50);
}

TEST(MdpOracle, ValueIterationAttainsTheExhaustiveStationaryOptimumExactly) {
  util::Rng rng(777);
  const double gamma = 0.9;
  for (int instance = 0; instance < 56; ++instance) {
    const std::size_t S = static_cast<std::size_t>(rng.uniform_int(2, 6));
    const std::size_t A = static_cast<std::size_t>(rng.uniform_int(2, 4));
    const Mdp mdp = fuzz_mdp(rng, S, A);
    const auto per_state = allowed_actions(mdp);
    const std::uint64_t count = stationary_count(per_state);
    ASSERT_LE(count, 4096u);

    // Per-state maximum over every stationary deterministic policy. The
    // optimal policy attains it in every state simultaneously.
    std::vector<double> best(S, -std::numeric_limits<double>::infinity());
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto policy = nth_stationary(per_state, i);
      const auto value = evaluate_stationary_policy(mdp, policy, gamma);
      for (std::size_t s = 0; s < S; ++s) best[s] = std::max(best[s], value[s]);
    }

    ValueIterationOptions opts;
    opts.gamma = gamma;
    const MdpSolution vi = solve_value_iteration(mdp, opts);
    ASSERT_TRUE(vi.converged);
    const auto vi_value = evaluate_stationary_policy(mdp, vi.policy, gamma);
    for (std::size_t s = 0; s < S; ++s) {
      // Bit-exact for the same measure-zero-ties reason as the finite
      // horizon test: the VI policy is one of the enumerated candidates and
      // both sides went through evaluate_stationary_policy.
      EXPECT_EQ(vi_value[s], best[s]) << "instance " << instance << " state " << s;
    }

    const MdpSolution pi = solve_policy_iteration(mdp, gamma);
    ASSERT_TRUE(pi.converged);
    const auto pi_value = evaluate_stationary_policy(mdp, pi.policy, gamma);
    for (std::size_t s = 0; s < S; ++s) {
      EXPECT_EQ(pi_value[s], best[s]) << "instance " << instance << " state " << s;
    }
  }
}

TEST(MdpOracle, ConvergedBellmanResidualIsBelowToleranceWhenRecomputedIndependently) {
  util::Rng rng(4242);
  for (int instance = 0; instance < 25; ++instance) {
    const std::size_t S = static_cast<std::size_t>(rng.uniform_int(2, 6));
    const std::size_t A = static_cast<std::size_t>(rng.uniform_int(2, 4));
    const Mdp mdp = fuzz_mdp(rng, S, A);
    ValueIterationOptions opts;
    opts.gamma = 0.92;
    opts.tolerance = 1e-10;
    const MdpSolution sol = solve_value_iteration(mdp, opts);
    ASSERT_TRUE(sol.converged);

    // Recompute max_s |V(s) - (TV)(s)| from scratch.
    double residual = 0.0;
    for (std::size_t s = 0; s < S; ++s) {
      double bellman = -std::numeric_limits<double>::infinity();
      for (std::size_t a = 0; a < A; ++a) {
        if (!mdp.action_allowed(s, a)) continue;
        double q = mdp.reward[s * A + a];
        for (const auto& [next, prob] : mdp.row(s, a)) {
          q += opts.gamma * prob * sol.value[next];
        }
        bellman = std::max(bellman, q);
      }
      residual = std::max(residual, std::abs(sol.value[s] - bellman));
    }
    // The in-place sweep's self-reported residual and this Jacobi recompute
    // agree up to the contraction factor; both must sit under tolerance with
    // the usual gamma/(1-gamma) slack of a Gauss-Seidel stop rule.
    EXPECT_LE(residual, opts.tolerance * (1.0 + opts.gamma / (1.0 - opts.gamma)))
        << "instance " << instance;
  }
}

TEST(MdpOracle, SweepOrderDoesNotChangeTheFixedPointReached) {
  util::Rng rng(99);
  for (int instance = 0; instance < 25; ++instance) {
    const std::size_t S = static_cast<std::size_t>(rng.uniform_int(2, 6));
    const std::size_t A = static_cast<std::size_t>(rng.uniform_int(2, 4));
    const Mdp mdp = fuzz_mdp(rng, S, A);
    ValueIterationOptions forward;
    forward.gamma = 0.9;
    ValueIterationOptions reverse = forward;
    reverse.order = SweepOrder::Reverse;
    const MdpSolution f = solve_value_iteration(mdp, forward);
    const MdpSolution r = solve_value_iteration(mdp, reverse);
    ASSERT_TRUE(f.converged);
    ASSERT_TRUE(r.converged);
    // The greedy policies must coincide (continuous rewards keep the argmax
    // gaps far above the solve tolerance), making their exact evaluations
    // bit-identical too.
    EXPECT_EQ(f.policy, r.policy) << "instance " << instance;
    const auto vf = evaluate_stationary_policy(mdp, f.policy, forward.gamma);
    const auto vr = evaluate_stationary_policy(mdp, r.policy, forward.gamma);
    for (std::size_t s = 0; s < S; ++s) EXPECT_EQ(vf[s], vr[s]);
  }
}

TEST(MdpOracle, ValidateRejectsStructurallyBrokenInstances) {
  util::Rng rng(5);
  Mdp good = fuzz_mdp(rng, 3, 2);

  Mdp non_stochastic = good;
  non_stochastic.rows[0][0].second += 0.5;
  EXPECT_THROW(non_stochastic.validate(), std::invalid_argument);

  Mdp bad_row_id = good;
  bad_row_id.row_of[0] = static_cast<std::uint32_t>(bad_row_id.rows.size());
  EXPECT_THROW(bad_row_id.validate(), std::invalid_argument);

  Mdp bad_next = good;
  bad_next.rows[0][0].first = static_cast<std::uint32_t>(bad_next.num_states);
  EXPECT_THROW(bad_next.validate(), std::invalid_argument);

  Mdp no_action = good;
  no_action.allowed.assign(no_action.num_states * no_action.num_actions, 1);
  for (std::size_t a = 0; a < no_action.num_actions; ++a) {
    no_action.allowed[1 * no_action.num_actions + a] = 0;
  }
  EXPECT_THROW(no_action.validate(), std::invalid_argument);

  Mdp wrong_sizes = good;
  wrong_sizes.reward.pop_back();
  EXPECT_THROW(wrong_sizes.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace clr::rt
