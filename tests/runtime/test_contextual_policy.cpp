#include "runtime/contextual_policy.hpp"

#include <gtest/gtest.h>

namespace clr::rt {
namespace {

dse::DesignDb make_db() {
  dse::DesignDb db;
  auto add = [&](double s, double f, double j, int tag) {
    dse::DesignPoint p;
    p.makespan = s;
    p.func_rel = f;
    p.energy = j;
    p.config.tasks.resize(1);
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(100, 0.95, 50, 0);
  add(120, 0.99, 80, 1);
  add(80, 0.92, 30, 2);
  return db;
}

DrcMatrix make_drc() {
  return DrcMatrix(3, {0, 10, 2, 10, 0, 10, 2, 10, 0});
}

dse::MetricRanges make_ranges() {
  dse::MetricRanges r;
  r.makespan_min = 80.0;
  r.makespan_max = 120.0;
  r.func_rel_min = 0.92;
  r.func_rel_max = 0.99;
  return r;
}

ContextualAuraPolicy::Params default_params() { return {}; }

TEST(ContextualAura, ContextGridCoversTheBox) {
  const auto db = make_db();
  const auto drc = make_drc();
  ContextualAuraPolicy policy(db, drc, 0.5, make_ranges(), default_params());
  EXPECT_EQ(policy.num_contexts(), 9u);
  // Corners map to distinct buckets.
  const auto loose = policy.context_of(dse::QosSpec{120.0, 0.92});
  const auto tight = policy.context_of(dse::QosSpec{80.0, 0.99});
  EXPECT_NE(loose, tight);
  // Out-of-box specs clamp into the edge buckets.
  EXPECT_EQ(policy.context_of(dse::QosSpec{500.0, 0.0}),
            policy.context_of(dse::QosSpec{120.0, 0.92}));
}

TEST(ContextualAura, SingleBucketMatchesPlainAura) {
  const auto db = make_db();
  const auto drc = make_drc();
  ContextualAuraPolicy::Params cp;
  cp.makespan_buckets = 1;
  cp.func_rel_buckets = 1;
  cp.gamma = 0.5;
  cp.alpha = 0.1;
  ContextualAuraPolicy contextual(db, drc, 0.7, make_ranges(), cp);
  AuraPolicy::Params ap;
  ap.gamma = 0.5;
  ap.alpha = 0.1;
  AuraPolicy plain(db, drc, 0.7, ap);

  util::Rng rng(3);
  std::size_t cur_a = 0, cur_b = 0;
  for (int i = 0; i < 200; ++i) {
    dse::QosSpec spec{rng.uniform(80.0, 130.0), rng.uniform(0.90, 0.99)};
    cur_a = contextual.select(cur_a, spec).point;
    cur_b = plain.select(cur_b, spec).point;
    EXPECT_EQ(cur_a, cur_b) << "step " << i;
    if (i % 10 == 9) {
      contextual.end_episode();
      plain.end_episode();
    }
  }
  EXPECT_EQ(contextual.values(0), plain.values());
}

TEST(ContextualAura, LearnsDifferentValuesPerContext) {
  const auto db = make_db();
  const auto drc = make_drc();
  auto params = default_params();
  params.alpha = 0.5;
  // pRC = 0.5 so staying cheaply at a feasible point also earns reward (at
  // pRC = 1 the max-energy point's global reward is exactly 0).
  ContextualAuraPolicy policy(db, drc, 0.5, make_ranges(), params);
  // Loose demands: point 2 (min energy, cheap to reach) is selected -> its
  // value rises in the loose context only.
  const dse::QosSpec loose{120.0, 0.92};
  const dse::QosSpec tight{120.0, 0.99};  // only point 1 feasible
  for (int i = 0; i < 10; ++i) {
    policy.select(0, loose);
    policy.end_episode();
  }
  for (int i = 0; i < 10; ++i) {
    policy.select(1, tight);
    policy.end_episode();
  }
  const auto ctx_loose = policy.context_of(loose);
  const auto ctx_tight = policy.context_of(tight);
  ASSERT_NE(ctx_loose, ctx_tight);
  EXPECT_GT(policy.values(ctx_loose)[2], 0.0);
  EXPECT_DOUBLE_EQ(policy.values(ctx_loose)[1], 0.0);
  EXPECT_GT(policy.values(ctx_tight)[1], 0.0);
  EXPECT_DOUBLE_EQ(policy.values(ctx_tight)[2], 0.0);
}

TEST(ContextualAura, ParameterValidation) {
  const auto db = make_db();
  const auto drc = make_drc();
  auto params = default_params();
  params.makespan_buckets = 0;
  EXPECT_THROW(ContextualAuraPolicy(db, drc, 0.5, make_ranges(), params), std::invalid_argument);
  params = default_params();
  params.gamma = 1.0;
  EXPECT_THROW(ContextualAuraPolicy(db, drc, 0.5, make_ranges(), params), std::invalid_argument);
  params = default_params();
  params.alpha = 0.0;
  EXPECT_THROW(ContextualAuraPolicy(db, drc, 0.5, make_ranges(), params), std::invalid_argument);
}

TEST(ContextualAura, ResetDropsPendingTrajectory) {
  const auto db = make_db();
  const auto drc = make_drc();
  auto params = default_params();
  params.alpha = 1.0;
  ContextualAuraPolicy policy(db, drc, 1.0, make_ranges(), params);
  policy.select(0, dse::QosSpec{120.0, 0.92});
  policy.reset();
  policy.end_episode();
  for (std::size_t c = 0; c < policy.num_contexts(); ++c) {
    for (double v : policy.values(c)) EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(ContextualAura, FrozenLearningKeepsValues) {
  const auto db = make_db();
  const auto drc = make_drc();
  ContextualAuraPolicy policy(db, drc, 1.0, make_ranges(), default_params());
  policy.set_learning(false);
  policy.select(0, dse::QosSpec{120.0, 0.92});
  policy.end_episode();
  for (std::size_t c = 0; c < policy.num_contexts(); ++c) {
    for (double v : policy.values(c)) EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

}  // namespace
}  // namespace clr::rt
