#include "runtime/policy.hpp"

#include <gtest/gtest.h>

namespace clr::rt {
namespace {

/// Hand-crafted database:
///   point 0: S=100, F=0.95, J=50  (fast-ish, cheap reliability, mid energy)
///   point 1: S=120, F=0.99, J=80  (slow, very reliable, expensive)
///   point 2: S= 80, F=0.92, J=30  (fastest, least reliable, cheapest)
dse::DesignDb make_db() {
  dse::DesignDb db;
  auto add = [&](double s, double f, double j, int tag) {
    dse::DesignPoint p;
    p.makespan = s;
    p.func_rel = f;
    p.energy = j;
    p.config.tasks.resize(1);
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(100, 0.95, 50, 0);
  add(120, 0.99, 80, 1);
  add(80, 0.92, 30, 2);
  return db;
}

/// Symmetric cost table: moving between any two distinct points costs 10,
/// except 0 <-> 2 which costs 2 (a cheap pair).
DrcMatrix make_drc() {
  return DrcMatrix(3, {0, 10, 2,
                       10, 0, 10,
                       2, 10, 0});
}

TEST(UraPolicy, RejectsBadArguments) {
  const auto db = make_db();
  const auto drc = make_drc();
  EXPECT_THROW(UraPolicy(db, drc, -0.1), std::invalid_argument);
  EXPECT_THROW(UraPolicy(db, drc, 1.1), std::invalid_argument);
  dse::DesignDb empty;
  DrcMatrix empty_drc(0, {});
  EXPECT_THROW(UraPolicy(empty, empty_drc, 0.5), std::invalid_argument);
}

TEST(UraPolicy, FiltersByFeasibility) {
  const auto db = make_db();
  const auto drc = make_drc();
  UraPolicy policy(db, drc, 1.0);
  // Only point 1 satisfies F >= 0.99.
  const auto d = policy.select(0, dse::QosSpec{200.0, 0.99});
  EXPECT_EQ(d.point, 1u);
  EXPECT_FALSE(d.feasible_set_empty);
}

TEST(UraPolicy, PrcOneMaximizesPerformance) {
  const auto db = make_db();
  const auto drc = make_drc();
  UraPolicy policy(db, drc, 1.0);
  // All feasible: picks minimum energy (point 2) regardless of dRC.
  const auto d = policy.select(1, dse::QosSpec{200.0, 0.0});
  EXPECT_EQ(d.point, 2u);
  EXPECT_DOUBLE_EQ(d.drc, 10.0);
}

TEST(UraPolicy, PrcZeroStaysPutWhenCurrentIsFeasible) {
  const auto db = make_db();
  const auto drc = make_drc();
  UraPolicy policy(db, drc, 0.0);
  // Current point 1 feasible: dRC 0 beats every move.
  const auto d = policy.select(1, dse::QosSpec{200.0, 0.0});
  EXPECT_EQ(d.point, 1u);
  EXPECT_DOUBLE_EQ(d.drc, 0.0);
}

TEST(UraPolicy, PrcZeroMovesToCheapestFeasibleOnViolation) {
  const auto db = make_db();
  const auto drc = make_drc();
  UraPolicy policy(db, drc, 0.0);
  // Current = 1, new spec excludes point 1 (S <= 110): feasible = {0, 2};
  // both cost 10 from point 1 — tie broken by best RET then order; with
  // pRC=0 both have equal normalized dRC, argmax keeps the first maximal
  // entry (point 0).
  const auto d = policy.select(1, dse::QosSpec{110.0, 0.0});
  EXPECT_TRUE(d.point == 0 || d.point == 2);
  EXPECT_DOUBLE_EQ(d.drc, 10.0);
}

TEST(UraPolicy, BalancedPrcPrefersCheapGoodEnoughMove) {
  const auto db = make_db();
  const auto drc = make_drc();
  UraPolicy policy(db, drc, 0.5);
  // From point 0 with everything feasible: point 2 has both the best energy
  // AND a cheap transition (cost 2) — clear winner at any pRC > 0.
  const auto d = policy.select(0, dse::QosSpec{200.0, 0.0});
  EXPECT_EQ(d.point, 2u);
  EXPECT_DOUBLE_EQ(d.drc, 2.0);
}

TEST(UraPolicy, EmptyFeasibleSetFallsBackToLeastViolating) {
  const auto db = make_db();
  const auto drc = make_drc();
  UraPolicy policy(db, drc, 0.5);
  const auto d = policy.select(0, dse::QosSpec{10.0, 0.999});
  EXPECT_TRUE(d.feasible_set_empty);
  EXPECT_LT(d.point, 3u);
  EXPECT_DOUBLE_EQ(d.reward, 0.0);  // worst outcome in the [0,1] reward scale
}

TEST(UraPolicy, RewardIsNormalizedCombination) {
  const auto db = make_db();
  const auto drc = make_drc();
  UraPolicy policy(db, drc, 1.0);
  const auto d = policy.select(0, dse::QosSpec{200.0, 0.0});
  // pRC=1: reward = database-global norm(R) of the best performer = 1.
  EXPECT_DOUBLE_EQ(d.reward, 1.0);
}

TEST(AuraPolicy, GammaZeroMatchesUra) {
  const auto db = make_db();
  const auto drc = make_drc();
  AuraPolicy::Params params;
  params.gamma = 0.0;
  for (double p_rc : {0.0, 0.3, 0.7, 1.0}) {
    UraPolicy ura(db, drc, p_rc);
    AuraPolicy aura(db, drc, p_rc, params);
    for (std::size_t current = 0; current < db.size(); ++current) {
      for (const auto& spec : {dse::QosSpec{200.0, 0.0}, dse::QosSpec{110.0, 0.0},
                               dse::QosSpec{200.0, 0.94}}) {
        EXPECT_EQ(ura.select(current, spec).point, aura.select(current, spec).point)
            << "pRC=" << p_rc;
      }
    }
  }
}

TEST(AuraPolicy, ValueLookaheadChangesDecision) {
  const auto db = make_db();
  const auto drc = make_drc();
  AuraPolicy::Params params;
  params.gamma = 0.9;
  params.guard = 10.0;  // wide guard so the lookahead may override freely
  AuraPolicy aura(db, drc, 1.0, params);
  // Bias the values: make point 0 enormously valuable.
  aura.set_values({100.0, 0.0, 0.0});
  const auto d = aura.select(1, dse::QosSpec{200.0, 0.0});
  EXPECT_EQ(d.point, 0u);  // overrides the pure-energy choice (point 2)
}

/// Database for the guard-band boundary: three points whose energies are
/// 100, 1e-11 and 0 — points 1 and 2 differ by 1e-13 in feasible-set
/// normalized immediate RET (pRC = 1), i.e. nearly but NOT exactly tied.
/// All transitions are free so dRC never interferes.
dse::DesignDb make_near_tie_db() {
  dse::DesignDb db;
  auto add = [&](double j, int tag) {
    dse::DesignPoint p;
    p.makespan = 100;
    p.func_rel = 0.95;
    p.energy = j;
    p.config.tasks.resize(1);
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(100.0, 0);
  add(1e-11, 1);
  add(0.0, 2);
  return db;
}

TEST(AuraPolicy, GuardZeroMeansExactTiesOnly) {
  // guard = 0 must restrict the value lookahead to *exact* immediate ties.
  // Point 1's immediate RET trails point 2's by ~1e-13; an epsilon guard
  // band would admit it and the huge learned value would flip the decision,
  // making the agent pay a real (if tiny) immediate loss the guard-0
  // contract forbids.
  const auto db = make_near_tie_db();
  DrcMatrix free_moves(3, std::vector<double>(9, 0.0));
  AuraPolicy::Params params;
  params.gamma = 0.5;
  params.guard = 0.0;
  AuraPolicy aura(db, free_moves, /*p_rc=*/1.0, params);
  aura.set_values({0.0, 100.0, 0.0});
  const auto d = aura.select(0, dse::QosSpec{200.0, 0.0});
  EXPECT_EQ(d.point, 2u);  // the best-immediate point, not the valuable one
}

TEST(AuraPolicy, GuardZeroStillArbitratesExactTies) {
  // Two points with identical metrics tie exactly on immediate RET; the
  // lookahead may (and should) break the tie by learned value.
  dse::DesignDb db;
  auto add = [&](double j, int tag) {
    dse::DesignPoint p;
    p.makespan = 100;
    p.func_rel = 0.95;
    p.energy = j;
    p.config.tasks.resize(1);
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(30.0, 0);
  add(30.0, 1);
  add(80.0, 2);
  DrcMatrix free_moves(3, std::vector<double>(9, 0.0));
  AuraPolicy::Params params;
  params.gamma = 0.5;
  params.guard = 0.0;
  AuraPolicy aura(db, free_moves, /*p_rc=*/1.0, params);
  aura.set_values({0.0, 50.0, 0.0});
  const auto d = aura.select(2, dse::QosSpec{200.0, 0.0});
  EXPECT_EQ(d.point, 1u);  // tied on RET, higher value wins
}

TEST(AuraPolicy, PositiveGuardAdmitsNearTies) {
  // With a real guard band the near-tied valuable point is fair game.
  const auto db = make_near_tie_db();
  DrcMatrix free_moves(3, std::vector<double>(9, 0.0));
  AuraPolicy::Params params;
  params.gamma = 0.5;
  params.guard = 0.05;
  AuraPolicy aura(db, free_moves, /*p_rc=*/1.0, params);
  aura.set_values({0.0, 100.0, 0.0});
  const auto d = aura.select(0, dse::QosSpec{200.0, 0.0});
  EXPECT_EQ(d.point, 1u);
}

TEST(AuraPolicy, SelectInitialIsNotRecordedIntoEpisode) {
  const auto db = make_db();
  const auto drc = make_drc();
  AuraPolicy::Params params;
  params.alpha = 1.0;
  AuraPolicy aura(db, drc, 1.0, params);
  const auto d = aura.select_initial(0, dse::QosSpec{200.0, 0.0});
  EXPECT_LT(d.point, db.size());
  aura.end_episode();  // nothing recorded -> nothing updated
  for (double v : aura.values()) EXPECT_DOUBLE_EQ(v, 0.0);
  for (std::size_t c : aura.visit_counts()) EXPECT_EQ(c, 0u);
  // The same decision through select() IS recorded.
  aura.select(0, dse::QosSpec{200.0, 0.0});
  aura.end_episode();
  bool any_update = false;
  for (std::size_t c : aura.visit_counts()) any_update |= c > 0;
  EXPECT_TRUE(any_update);
}

TEST(AuraPolicy, EndEpisodeUpdatesValuesWithDiscountedReturns) {
  const auto db = make_db();
  const auto drc = make_drc();
  AuraPolicy::Params params;
  params.gamma = 0.5;
  params.alpha = 1.0;  // full overwrite for hand-checkable math
  AuraPolicy aura(db, drc, 1.0, params);

  // Visit: all feasible, pRC=1 -> always point 2, reward 1 each time.
  aura.select(0, dse::QosSpec{200.0, 0.0});
  aura.select(2, dse::QosSpec{200.0, 0.0});
  aura.end_episode();
  // Returns (backward): G_last = 1; G_first = 1 + 0.5*1 = 1.5.
  // Every-visit with alpha=1 applies last update G=1.5 to state 2? No:
  // backward pass updates state 2 with G=1 first, then state 2 again with
  // G=1.5 (both visits were state 2), leaving V=1.5.
  EXPECT_DOUBLE_EQ(aura.values()[2], 1.5);
  EXPECT_DOUBLE_EQ(aura.values()[0], 0.0);
}

TEST(AuraPolicy, LearningCanBeFrozen) {
  const auto db = make_db();
  const auto drc = make_drc();
  AuraPolicy aura(db, drc, 1.0);
  aura.set_learning(false);
  aura.select(0, dse::QosSpec{200.0, 0.0});
  aura.end_episode();
  for (double v : aura.values()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(AuraPolicy, ResetClearsEpisodeButKeepsValues) {
  const auto db = make_db();
  const auto drc = make_drc();
  AuraPolicy::Params params;
  params.alpha = 1.0;
  AuraPolicy aura(db, drc, 1.0, params);
  aura.set_values({1.0, 2.0, 3.0});
  aura.select(0, dse::QosSpec{200.0, 0.0});
  aura.reset();        // drops the pending trajectory
  aura.end_episode();  // nothing to apply
  EXPECT_EQ(aura.values(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(AuraPolicy, ParameterValidation) {
  const auto db = make_db();
  const auto drc = make_drc();
  AuraPolicy::Params params;
  params.gamma = 1.0;
  EXPECT_THROW(AuraPolicy(db, drc, 0.5, params), std::invalid_argument);
  params.gamma = 0.5;
  params.alpha = 0.0;
  EXPECT_THROW(AuraPolicy(db, drc, 0.5, params), std::invalid_argument);
}

TEST(AuraPolicy, SetValuesRejectsWrongSize) {
  const auto db = make_db();
  const auto drc = make_drc();
  AuraPolicy aura(db, drc, 0.5);
  EXPECT_THROW(aura.set_values({1.0}), std::invalid_argument);
}

TEST(BaselinePolicy, PicksBestHypervolumeEveryEvent) {
  const auto db = make_db();
  const auto drc = make_drc();
  BaselinePolicy policy(db, drc);
  // Loose spec: the point sweeping the most volume toward the corner wins;
  // point 2 dominates on makespan and energy and should win with a loose F.
  const auto d = policy.select(1, dse::QosSpec{200.0, 0.0});
  EXPECT_EQ(d.point, 2u);
  EXPECT_DOUBLE_EQ(d.drc, 10.0);
}

TEST(BaselinePolicy, RespectsFeasibility) {
  const auto db = make_db();
  const auto drc = make_drc();
  BaselinePolicy policy(db, drc);
  const auto d = policy.select(0, dse::QosSpec{200.0, 0.99});
  EXPECT_EQ(d.point, 1u);
}

TEST(BaselinePolicy, FallsBackWhenNothingFeasible) {
  const auto db = make_db();
  const auto drc = make_drc();
  BaselinePolicy policy(db, drc);
  const auto d = policy.select(0, dse::QosSpec{10.0, 0.999});
  EXPECT_TRUE(d.feasible_set_empty);
}

TEST(DrcMatrix, ExplicitTableLookups) {
  const auto drc = make_drc();
  EXPECT_DOUBLE_EQ(drc.drc(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(drc.drc(1, 0), 10.0);
  EXPECT_DOUBLE_EQ(drc.drc(1, 1), 0.0);
  EXPECT_EQ(drc.size(), 3u);
}

TEST(DrcMatrix, RejectsNonSquareTable) {
  EXPECT_THROW(DrcMatrix(2, {1.0, 2.0, 3.0}), std::invalid_argument);
}

}  // namespace
}  // namespace clr::rt
