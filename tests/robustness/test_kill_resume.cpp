// Crash-safety kill test (DESIGN.md §5.12): fork a child that runs a
// checkpointing session, SIGKILL it at a pseudo-random point mid-run, then
// resume from whatever checkpoint survived and prove the final result is
// bit-identical to an uninterrupted run. SIGKILL cannot be caught, so this
// exercises the true torn-write window of the A/B checkpoint store — the
// child dies wherever it happens to be, including inside a checkpoint write.
//
// The delays sweep [0, reference runtime] deterministically (SplitMix64), so
// across the trial set the kill lands before the first checkpoint, between
// checkpoints, inside writes, and after completion.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "experiments/app.hpp"
#include "experiments/session.hpp"
#include "fleet/fleet.hpp"
#include "io/checkpoint.hpp"

namespace clr::exp {
namespace {

namespace fs = std::filesystem;

// --- Shared fixtures ---------------------------------------------------------

FlowParams small_flow_params(std::size_t threads) {
  FlowParams params;
  params.spec_samples = 16;
  params.dse.base_ga = {.population = 10, .generations = 5};
  params.dse.red_ga = {.population = 8, .generations = 4};
  params.dse.calibration_samples = 12;
  params.dse.max_red_seeds = 3;
  params.dse.max_base_points = 8;
  params.dse.threads = threads;
  return params;
}

dse::DesignDb make_db() {
  dse::DesignDb db;
  auto add = [&](double s, double f, double j, int tag) {
    dse::DesignPoint p;
    p.makespan = s;
    p.func_rel = f;
    p.energy = j;
    p.config.tasks.resize(1);
    p.config.tasks[0].priority = tag;
    db.add(p);
  };
  add(100, 0.95, 50, 0);
  add(120, 0.99, 80, 1);
  add(80, 0.92, 30, 2);
  return db;
}

rt::DrcMatrix make_drc() {
  return rt::DrcMatrix(3, {0, 10, 2, 10, 0, 10, 2, 10, 0});
}

dse::MetricRanges make_ranges() {
  dse::MetricRanges r;
  r.makespan_min = 80.0;
  r.makespan_max = 120.0;
  r.func_rel_min = 0.92;
  r.func_rel_max = 0.99;
  r.energy_min = 30.0;
  r.energy_max = 80.0;
  return r;
}

void add_grid(Runner& runner, const dse::DesignDb& db, const rt::DrcMatrix& drc) {
  for (const PolicyKind kind : {PolicyKind::Baseline, PolicyKind::Ura}) {
    RunnerCell cell;
    cell.db = &db;
    cell.drc = &drc;
    cell.ranges = make_ranges();
    cell.params.kind = kind;
    cell.params.p_rc = 0.3;
    cell.params.sim.total_cycles = 2e4;
    cell.seed = 42 + static_cast<std::uint64_t>(kind);
    cell.label = std::string("cell_") + std::to_string(static_cast<int>(kind));
    runner.add_cell(cell);
  }
}

void expect_db_equal(const dse::DesignDb& a, const dse::DesignDb& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.point(i).config, b.point(i).config) << what << " point " << i;
    EXPECT_DOUBLE_EQ(a.point(i).energy, b.point(i).energy) << what << " point " << i;
    EXPECT_DOUBLE_EQ(a.point(i).makespan, b.point(i).makespan) << what << " point " << i;
    EXPECT_DOUBLE_EQ(a.point(i).func_rel, b.point(i).func_rel) << what << " point " << i;
    EXPECT_EQ(a.point(i).extra, b.point(i).extra) << what << " point " << i;
  }
}

class KillTempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("clr_kill_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()) + "_" +
            std::to_string(static_cast<long>(::getpid())));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

/// Fork `child`, SIGKILL it after `delay_us` (the child may well finish
/// first — that is a valid trial: kill-after-completion), and reap it.
void run_and_kill(const std::function<void()>& child, useconds_t delay_us) {
  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    // Child: run the workload, then hard-exit. _exit skips atexit/gtest
    // teardown, so the parent's output stream is not duplicated. Any
    // exception is a hard failure the parent sees as a nonzero status.
    try {
      child();
      ::_exit(0);
    } catch (...) {
      ::_exit(2);
    }
  }
  ::usleep(delay_us);
  ::kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  // Either the kill landed (SIGKILL) or the child finished cleanly first.
  if (WIFEXITED(status)) {
    EXPECT_EQ(WEXITSTATUS(status), 0) << "child failed before the kill landed";
  } else {
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
  }
}

template <typename Workload>
useconds_t measure_runtime_us(const Workload& workload) {
  const auto t0 = std::chrono::steady_clock::now();
  workload();
  const auto dt = std::chrono::steady_clock::now() - t0;
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(dt).count();
  return static_cast<useconds_t>(us < 1000 ? 1000 : us);
}

// --- Explore: kill at random points, resume, compare -------------------------

void explore_kill_trials(const std::string& checkpoint_base, std::size_t trials,
                         std::size_t child_threads, std::uint64_t delay_seed) {
  const auto app = make_synthetic_app(7, 11);
  const std::uint64_t flow_seed = 77;

  // Reference: uninterrupted, no checkpointing (and the timing yardstick).
  const FlowParams reference_params = small_flow_params(1);
  FlowResult reference;
  const useconds_t runtime_us = measure_runtime_us([&] {
    SessionControl plain;
    reference = run_explore_session(*app, reference_params, flow_seed, plain).flow;
  });
  ASSERT_FALSE(reference.red.empty());

  const FlowParams child_params = small_flow_params(child_threads);
  util::SplitMix64 delays(delay_seed);

  for (std::size_t trial = 0; trial < trials; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::string checkpoint = checkpoint_base + "." + std::to_string(trial);

    SessionControl control;
    control.checkpoint_path = checkpoint;
    control.checkpoint_every = 1;
    control.resume = true;

    // Child may itself die mid-write; sweep the delay across the full run.
    run_and_kill([&] { (void)run_explore_session(*app, child_params, flow_seed, control); },
                 static_cast<useconds_t>(delays.next() % runtime_us));

    // Resume (possibly repeatedly — the checkpoint may be early) with the
    // reference thread count: the checkpoint must carry no thread residue.
    SessionControl resume_control;
    resume_control.checkpoint_path = checkpoint;
    resume_control.checkpoint_every = 1;
    resume_control.resume = true;
    ExploreOutcome out = run_explore_session(*app, reference_params, flow_seed, resume_control);
    int legs = 0;
    while (!out.complete) {
      ASSERT_LT(++legs, 64) << "resume failed to converge";
      out = run_explore_session(*app, reference_params, flow_seed, resume_control);
    }

    EXPECT_DOUBLE_EQ(out.flow.spec.max_makespan, reference.spec.max_makespan);
    EXPECT_DOUBLE_EQ(out.flow.spec.min_func_rel, reference.spec.min_func_rel);
    expect_db_equal(out.flow.based, reference.based, "based");
    expect_db_equal(out.flow.red, reference.red, "red");
  }
}

TEST_F(KillTempDir, ExploreSurvivesSigkillAtRandomPointsJobs1) {
  explore_kill_trials(path("explore.clrdb"), 6, 1, 0xA11CE5EEDULL);
}

TEST_F(KillTempDir, ExploreSurvivesSigkillAtRandomPointsJobs8) {
  explore_kill_trials(path("explore.clrdb"), 6, 8, 0xB0B5EED2ULL);
}

// --- Runner: kill at random points, resume, compare --------------------------

TEST_F(KillTempDir, RunnerGridSurvivesSigkillAtRandomPoints) {
  const auto db = make_db();
  const auto drc = make_drc();

  RunnerConfig config;
  config.replications = 4;
  config.jobs = 1;

  std::vector<CellResult> reference;
  const useconds_t runtime_us = measure_runtime_us([&] {
    Runner runner(config);
    add_grid(runner, db, drc);
    reference = runner.run();
  });

  RunnerConfig wide = config;
  wide.jobs = 8;
  util::SplitMix64 delays(0xC0FFEE11ULL);

  for (std::size_t trial = 0; trial < 10; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::string checkpoint = path("grid.clrdb." + std::to_string(trial));

    SessionControl control;
    control.checkpoint_path = checkpoint;
    control.checkpoint_every = 1;
    control.resume = true;

    run_and_kill(
        [&] {
          Runner runner(wide);
          add_grid(runner, db, drc);
          (void)run_runner_session(runner, control);
        },
        static_cast<useconds_t>(delays.next() % runtime_us));

    Runner resumed(config);
    add_grid(resumed, db, drc);
    const RunnerOutcome out = run_runner_session(resumed, control);
    ASSERT_TRUE(out.run.complete);

    ASSERT_EQ(out.run.results.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const auto& a = reference[i].stats;
      const auto& b = out.run.results[i].stats;
      EXPECT_EQ(a.replications, b.replications) << "cell " << i;
      EXPECT_DOUBLE_EQ(a.num_events.mean, b.num_events.mean) << "cell " << i;
      EXPECT_DOUBLE_EQ(a.num_events.ci95, b.num_events.ci95) << "cell " << i;
      EXPECT_DOUBLE_EQ(a.num_reconfigs.mean, b.num_reconfigs.mean) << "cell " << i;
      EXPECT_DOUBLE_EQ(a.avg_energy.mean, b.avg_energy.mean) << "cell " << i;
      EXPECT_DOUBLE_EQ(a.avg_energy.stddev, b.avg_energy.stddev) << "cell " << i;
      EXPECT_DOUBLE_EQ(a.avg_reconfig_cost.mean, b.avg_reconfig_cost.mean) << "cell " << i;
      EXPECT_DOUBLE_EQ(a.max_drc.max, b.max_drc.max) << "cell " << i;
      EXPECT_DOUBLE_EQ(a.qos_violation_time.mean, b.qos_violation_time.mean) << "cell " << i;
      EXPECT_DOUBLE_EQ(a.availability.mean, b.availability.mean) << "cell " << i;
    }
  }
}

// --- Fleet: kill at random points, resume, compare ---------------------------

TEST_F(KillTempDir, FleetSurvivesSigkillAtRandomPoints) {
  const auto db = make_db();
  const auto drc = make_drc();

  fleet::FleetConfig config;
  config.devices = 512;
  config.block_size = 32;  // 16 blocks
  config.seed = 0xF1EE75EEDULL;
  config.params.kind = PolicyKind::Ura;
  config.params.p_rc = 0.3;
  config.params.sim.total_cycles = 2e3;
  config.params.faults.transient_rate = 1e-4;
  config.params.faults.validate();
  config.params.fault_profiles = {{1.0, 2.0}, {1.4, 1.6}, {0.7, 2.4}};
  config.ranges = make_ranges();

  fleet::FleetResult reference;
  const useconds_t runtime_us = measure_runtime_us([&] {
    fleet::FleetConfig plain = config;
    plain.jobs = 1;
    reference = fleet::run_fleet(db, drc, nullptr, plain);
  });
  ASSERT_TRUE(reference.complete);

  // Children run wide (4 workers over 8 shards); the parent resumes at one
  // worker — the checkpoint must carry no partitioning or thread residue.
  fleet::FleetConfig wide = config;
  wide.shards = 8;
  wide.jobs = 4;
  util::SplitMix64 delays(0xF1EE7C1DULL);

  for (std::size_t trial = 0; trial < 6; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::string checkpoint = path("fleet.clrdb." + std::to_string(trial));

    SessionControl control;
    control.checkpoint_path = checkpoint;
    control.checkpoint_every = 1;
    control.resume = true;

    run_and_kill([&] { (void)fleet::run_fleet_session(db, drc, nullptr, wide, control); },
                 static_cast<useconds_t>(delays.next() % runtime_us));

    fleet::FleetConfig narrow = config;
    narrow.jobs = 1;
    fleet::FleetSessionOutcome out = fleet::run_fleet_session(db, drc, nullptr, narrow, control);
    int legs = 0;
    while (!out.result.complete) {
      ASSERT_LT(++legs, 64) << "resume failed to converge";
      out = fleet::run_fleet_session(db, drc, nullptr, narrow, control);
    }

    // Bit-identical to the uninterrupted run: every per-block sum (defaulted
    // operator== compares the doubles bitwise) and the global fold.
    EXPECT_EQ(out.result.progress.done, reference.progress.done);
    EXPECT_EQ(out.result.progress.blocks, reference.progress.blocks);
    EXPECT_EQ(out.result.summary.totals, reference.summary.totals);
    EXPECT_EQ(out.result.summary.mean_energy, reference.summary.mean_energy);
    EXPECT_EQ(out.result.summary.mean_availability, reference.summary.mean_availability);
  }
}

// --- Torn files left by a kill are recoverable -------------------------------

TEST_F(KillTempDir, SlotPairSurvivesArbitraryCorruptionOfTheNewestSlot) {
  // Belt-and-braces companion to the fork tests: whatever garbage a crash
  // leaves in the NEWEST slot (zero length, torn tail, foreign bytes), the
  // sibling keeps the run resumable and the final result stays reference-
  // identical.
  const auto app = make_synthetic_app(7, 11);
  SessionControl plain;
  const FlowResult reference = run_explore_session(*app, small_flow_params(1), 77, plain).flow;

  const std::vector<std::string> garbage_variants = {std::string(), std::string("short"),
                                                     std::string(4096, '\xEE')};
  for (std::size_t variant = 0; variant < garbage_variants.size(); ++variant) {
    SCOPED_TRACE("variant " + std::to_string(variant));
    const std::string checkpoint = path("explore.clrdb." + std::to_string(variant));

    SessionControl control;
    control.checkpoint_path = checkpoint;
    control.checkpoint_every = 1;
    control.resume = true;
    control.step_budget = 4;
    ASSERT_FALSE(run_explore_session(*app, small_flow_params(1), 77, control).complete);

    // Find the slot holding the newest sequence and wreck it.
    io::CheckpointStore store(checkpoint);
    auto newest = store.load_newest();
    ASSERT_TRUE(newest.has_value());
    const std::uint64_t newest_sequence = io::checkpoint_sequence(newest->view());
    std::string newest_slot = store.slot_a();
    try {
      if (io::checkpoint_sequence(io::Snapshot::open(store.slot_b()).view()) == newest_sequence) {
        newest_slot = store.slot_b();
      }
    } catch (const io::SnapshotError&) {
      // slot B missing/unreadable: newest must be in A
    }
    {
      std::ofstream out(newest_slot, std::ios::binary | std::ios::trunc);
      const std::string& garbage = garbage_variants[variant];
      out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
    }

    // Resume repeatedly to completion — some work is repeated (we fell back
    // to the older checkpoint) but the result must not change.
    control.step_budget = 0;
    ExploreOutcome out = run_explore_session(*app, small_flow_params(1), 77, control);
    int legs = 0;
    while (!out.complete) {
      ASSERT_LT(++legs, 64) << "resume failed to converge";
      out = run_explore_session(*app, small_flow_params(1), 77, control);
    }
    EXPECT_DOUBLE_EQ(out.flow.spec.max_makespan, reference.spec.max_makespan);
    EXPECT_DOUBLE_EQ(out.flow.spec.min_func_rel, reference.spec.min_func_rel);
    expect_db_equal(out.flow.based, reference.based, "based");
    expect_db_equal(out.flow.red, reference.red, "red");
  }
}

}  // namespace
}  // namespace clr::exp
