// Snapshot-vs-JSON artifact load benchmark + CI regression gate.
//
// Measures what a fleet worker pays before its first simulated cycle: the
// JSON path re-parses the design database and rebuilds the O(n²·tasks)
// DrcMatrix on every process start, while the `.clrdb` path (io/snapshot.hpp)
// mmaps the validated flat tables and materializes them — the persisted cost
// matrix makes the rebuild disappear entirely. Both paths must produce the
// same database bit-for-bit (contract gate, never retried); the speedup is
// gated against baselines/snapshot_io.json like bench/schedule_kernel (perf
// gates get up to three measurement attempts with a cool-down between them).
//
// Emits machine-readable BENCH_snapshot.json to $CLR_REPORT_DIR (or the
// working directory).
//
// Usage: snapshot_io [--check-baseline <path>] [tasks] [seed]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dse/mapping_problem.hpp"
#include "io/serialize.hpp"
#include "io/snapshot.hpp"
#include "runtime/drc_matrix.hpp"

namespace {

using namespace clr;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("snapshot_io: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool same_db(const dse::DesignDb& a, const dse::DesignDb& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& p = a.point(i);
    const auto& q = b.point(i);
    if (!(p.config == q.config) || p.energy != q.energy || p.makespan != q.makespan ||
        p.func_rel != q.func_rel || p.extra != q.extra) {
      return false;
    }
  }
  return true;
}

struct Timings {
  double json_load_ms = 0.0;
  double drc_rebuild_ms = 0.0;
  double snap_open_ms = 0.0;
  double snap_materialize_ms = 0.0;
  double json_total_ms = 0.0;
  double snap_total_ms = 0.0;
  double speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  const std::size_t tasks = positional.size() > 0
                                ? static_cast<std::size_t>(std::atol(positional[0].c_str()))
                                : (bench::smoke() ? 10 : 20);
  const auto seed = positional.size() > 1
                        ? static_cast<std::uint64_t>(std::atoll(positional[1].c_str()))
                        : 0xC1DBULL;
  const std::size_t num_points = bench::smoke() ? 96 : 256;

  // Workload: a database of sampled (decoded + evaluated) configurations —
  // GA archives at fleet scale hold hundreds of points, and DrcMatrix build
  // cost depends only on the stored configurations, not how they were found.
  const auto app = exp::make_synthetic_app(tasks, seed);
  const dse::QosSpec loose{1e18, 0.0};
  dse::MappingProblem problem(app->context(), loose, dse::ObjectiveMode::EnergyQos);
  util::Rng rng(seed ^ 0xBEEFULL);
  dse::DesignDb db;
  db.reserve(num_points);
  while (db.size() < num_points) {
    const auto cfg = problem.decode(problem.random_genes(rng));
    const auto res = problem.evaluate_schedule(cfg);
    dse::DesignPoint p;
    p.config = cfg;
    p.energy = res.energy;
    p.makespan = res.makespan;
    p.func_rel = res.func_rel;
    db.add(std::move(p));
  }
  recfg::ReconfigModel reconfig(app->platform(), app->impls());
  const rt::DrcMatrix drc(db, reconfig);

  const auto dir = std::filesystem::temp_directory_path();
  const std::string json_path = (dir / "clr_bench_snapshot.json").string();
  const std::string clrdb_path = (dir / "clr_bench_snapshot.clrdb").string();
  io::save_design_db(json_path, db, app->clr_space());
  io::save_snapshot(clrdb_path, db, app->clr_space(), &drc);
  const auto json_bytes = std::filesystem::file_size(json_path);
  const auto clrdb_bytes = std::filesystem::file_size(clrdb_path);

  // Contract gate: both load paths must reproduce the written database (and
  // the snapshot additionally its cost matrix) exactly. Deterministic, never
  // retried.
  bool bit_identical = true;
  bool mapped = false;
  {
    const auto from_json = io::load_design_db(json_path);
    const io::Snapshot snap = io::Snapshot::open(clrdb_path);
    mapped = snap.is_mapped();
    const io::LoadedSnapshot from_snap = io::materialize(snap.view());
    bit_identical = same_db(from_json.db, db) && same_db(from_snap.db, db) &&
                    from_snap.drc.has_value() && from_snap.drc->size() == db.size();
    if (bit_identical) {
      for (std::size_t i = 0; i < db.size() && bit_identical; ++i) {
        for (std::size_t j = 0; j < db.size(); ++j) {
          if (from_snap.drc->drc(i, j) != drc.drc(i, j)) {
            bit_identical = false;
            break;
          }
        }
      }
    }
  }

  const int rounds = 9;
  const auto measure = [&] {
    Timings t;
    std::vector<double> json_load, drc_build, snap_open, snap_mat;
    for (int r = 0; r < rounds; ++r) {
      auto start = Clock::now();
      const auto loaded = io::load_design_db(json_path);
      json_load.push_back(ms_since(start));

      // The per-process rebuild the snapshot kills: sequential, like a fleet
      // worker that cannot spare a warm-up thread pool.
      start = Clock::now();
      const rt::DrcMatrix rebuilt(loaded.db, reconfig);
      drc_build.push_back(ms_since(start));
      if (rebuilt.size() != db.size()) std::abort();

      start = Clock::now();
      const io::Snapshot snap = io::Snapshot::open(clrdb_path);
      snap_open.push_back(ms_since(start));

      start = Clock::now();
      const io::LoadedSnapshot from_snap = io::materialize(snap.view());
      snap_mat.push_back(ms_since(start));
      if (from_snap.db.size() != db.size()) std::abort();
    }
    t.json_load_ms = median_of(json_load);
    t.drc_rebuild_ms = median_of(drc_build);
    t.snap_open_ms = median_of(snap_open);
    t.snap_materialize_ms = median_of(snap_mat);
    t.json_total_ms = t.json_load_ms + t.drc_rebuild_ms;
    t.snap_total_ms = t.snap_open_ms + t.snap_materialize_ms;
    t.speedup = t.snap_total_ms > 0.0 ? t.json_total_ms / t.snap_total_ms : 0.0;
    return t;
  };

  double speedup_floor = 3.0;
  if (!baseline_path.empty()) {
    const io::Json baseline = io::Json::parse(read_text_file(baseline_path));
    if (const io::Json* f = baseline.find("speedup_floor")) speedup_floor = f->as_number();
  }

  Timings t = measure();
  for (int attempt = 1; attempt < 3 && !baseline_path.empty(); ++attempt) {
    if (t.speedup >= speedup_floor) break;
    std::printf("note: perf gate missed (attempt %d/3), re-measuring after cool-down\n",
                attempt);
    std::this_thread::sleep_for(std::chrono::seconds(3));
    t = measure();
  }

  std::printf("snapshot I/O: %zu tasks, %zu points, CLR space %zu, %llu JSON bytes -> %llu "
              ".clrdb bytes\n",
              tasks, db.size(), app->clr_space().size(),
              static_cast<unsigned long long>(json_bytes),
              static_cast<unsigned long long>(clrdb_bytes));
  std::printf("  JSON:     parse %8.3f ms + DrcMatrix rebuild %8.3f ms = %8.3f ms\n",
              t.json_load_ms, t.drc_rebuild_ms, t.json_total_ms);
  std::printf("  snapshot: open  %8.3f ms + materialize      %8.3f ms = %8.3f ms (%s)\n",
              t.snap_open_ms, t.snap_materialize_ms, t.snap_total_ms,
              mapped ? "mmap" : "arena read");
  std::printf("  speedup: %.2fx   bit-identical: %s\n", t.speedup,
              bit_identical ? "yes" : "NO (BUG)");

  io::Json report(io::JsonObject{
      {"workload",
       io::Json(io::JsonObject{{"tasks", io::Json(static_cast<double>(tasks))},
                               {"seed", io::Json(static_cast<double>(seed))},
                               {"num_points", io::Json(static_cast<double>(db.size()))},
                               {"clr_configs", io::Json(static_cast<double>(app->clr_space().size()))},
                               {"smoke", io::Json(bench::smoke())}})},
      {"file_bytes", io::Json(io::JsonObject{{"json", io::Json(static_cast<double>(json_bytes))},
                                             {"clrdb", io::Json(static_cast<double>(clrdb_bytes))}})},
      {"json", io::Json(io::JsonObject{{"load_ms", io::Json(t.json_load_ms)},
                                       {"drc_rebuild_ms", io::Json(t.drc_rebuild_ms)},
                                       {"total_ms", io::Json(t.json_total_ms)}})},
      {"snapshot", io::Json(io::JsonObject{{"open_ms", io::Json(t.snap_open_ms)},
                                           {"materialize_ms", io::Json(t.snap_materialize_ms)},
                                           {"total_ms", io::Json(t.snap_total_ms)},
                                           {"mapped", io::Json(mapped)}})},
      {"speedup", io::Json(t.speedup)},
      {"bit_identical", io::Json(bit_identical)},
  });
  const char* report_dir = std::getenv("CLR_REPORT_DIR");
  const std::string out_path =
      (report_dir != nullptr && report_dir[0] != '\0' ? std::string(report_dir) + "/"
                                                      : std::string()) +
      "BENCH_snapshot.json";
  util::write_file(out_path, report.dump(2) + "\n");
  std::printf("[report] %s\n", out_path.c_str());

  std::filesystem::remove(json_path);
  std::filesystem::remove(clrdb_path);

  bool ok = bit_identical;
  if (!bit_identical) std::printf("FAIL: loaded databases diverge from the written one\n");
  if (!baseline_path.empty()) {
    std::printf("baseline check: speedup %.2fx vs %.2fx floor\n", t.speedup, speedup_floor);
    if (t.speedup < speedup_floor) {
      std::printf("FAIL: snapshot load speedup %.2fx below the %.2fx acceptance floor\n",
                  t.speedup, speedup_floor);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
