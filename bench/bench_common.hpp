#pragma once
// Shared setup for the table/figure reproduction harnesses.
//
// Scaling: the paper simulates one million application execution cycles per
// Monte-Carlo run (§5.2). The default here is 200k cycles so the whole bench
// suite finishes in a couple of minutes; set CLR_FULL=1 in the environment to
// run the paper-scale experiments. CLR_SMOKE=1 shrinks everything (one tiny
// app, short horizons, small GA budgets) so CI can exercise the replicated
// harness end-to-end on every push.
//
// Replication: runtime cells are evaluated through exp::Runner — CLR_REPS
// Monte-Carlo replications per cell (default 5) fanned out over CLR_JOBS
// worker threads (default: all cores; results are identical at any count).
// Tables report mean ± 95% CI; CLR_REPORT_DIR=<dir> additionally writes each
// bench's full replicated grid as JSON.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "experiments/runner.hpp"
#include "trace/trace.hpp"

namespace clr::bench {

/// True when the CLR_FULL environment switch asks for paper-scale runs.
inline bool full_scale() {
  const char* env = std::getenv("CLR_FULL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// True when CLR_SMOKE asks for the CI-sized configuration.
inline bool smoke() {
  const char* env = std::getenv("CLR_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Monte-Carlo horizon (application cycles).
inline double sim_cycles() {
  if (smoke()) return 2e4;
  return full_scale() ? 1e6 : 2e5;
}

/// Monte-Carlo replications per grid cell (CLR_REPS override, default 5).
inline std::size_t replications() {
  const char* env = std::getenv("CLR_REPS");
  if (env != nullptr && env[0] != '\0') {
    const long n = std::atol(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return smoke() ? 2 : 5;
}

/// Runtime-harness worker threads (CLR_JOBS override; 0 = all cores).
inline std::size_t jobs() {
  const char* env = std::getenv("CLR_JOBS");
  if (env != nullptr && env[0] != '\0') {
    const long n = std::atol(env);
    if (n >= 0) return static_cast<std::size_t>(n);
  }
  return 0;
}

/// Base transient soft-error rate for the fault-sweep bench (CLR_FAULT_RATE
/// override, per PE per cycle; default 1e-4). The sweep evaluates multiples
/// of this base rate.
inline double fault_rate() {
  const char* env = std::getenv("CLR_FAULT_RATE");
  if (env != nullptr && env[0] != '\0') {
    const double r = std::atof(env);
    if (r > 0.0) return r;
  }
  return 1e-4;
}

/// exp::Runner configuration from the environment knobs above. keep_runs is
/// on: the benches compute paired per-replication comparisons.
inline exp::RunnerConfig runner_config() {
  exp::RunnerConfig cfg;
  cfg.replications = replications();
  cfg.jobs = jobs();
  cfg.keep_runs = true;
  return cfg;
}

/// The task counts of the paper's sweeps (Tables 4-7).
inline const std::vector<std::size_t>& paper_task_counts() {
  static const std::vector<std::size_t> counts{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  static const std::vector<std::size_t> tiny{10};
  return smoke() ? tiny : counts;
}

/// A figure-style size sweep, shrunk to one tiny app under CLR_SMOKE.
inline std::vector<std::size_t> sweep_task_counts(std::vector<std::size_t> full) {
  if (smoke()) return {10};
  return full;
}

/// Design-time GA parameters per §5.1, sized for bench runtimes.
inline dse::DseConfig bench_dse_config(std::size_t num_tasks) {
  dse::DseConfig cfg;
  if (smoke()) {
    cfg.base_ga.population = 32;
    cfg.base_ga.generations = 12;
    cfg.red_ga.population = 16;
    cfg.red_ga.generations = 8;
    cfg.max_red_seeds = 4;
    return cfg;
  }
  cfg.base_ga.population = 64;
  cfg.base_ga.generations = num_tasks <= 40 ? 60 : 80;
  cfg.red_ga.population = 32;
  cfg.red_ga.generations = 24;
  cfg.max_red_seeds = 12;
  return cfg;
}

/// Run the full design-time flow for one synthetic application.
struct PreparedApp {
  std::unique_ptr<exp::AppInstance> app;
  exp::FlowResult flow;
  dse::MetricRanges qos_box;
};

inline PreparedApp prepare_app(std::size_t num_tasks, std::uint64_t experiment_tag,
                               dse::ObjectiveMode mode = dse::ObjectiveMode::EnergyQos) {
  PreparedApp prepared;
  prepared.app = exp::make_synthetic_app(num_tasks, exp::derive_seed(experiment_tag, num_tasks));
  exp::FlowParams params;
  params.dse = bench_dse_config(num_tasks);
  params.mode = mode;
  util::Rng rng(exp::derive_seed(experiment_tag ^ 0xD5Eu, num_tasks));
  prepared.flow = exp::run_design_flow(*prepared.app, params, rng);
  prepared.qos_box = exp::qos_ranges(prepared.flow);
  return prepared;
}

/// A harness cell for one (db × policy × pRC) evaluation of a prepared app,
/// with the bench horizon.
inline exp::RunnerCell make_cell(const PreparedApp& prepared, const dse::DesignDb& db,
                                 exp::PolicyKind kind, double p_rc, std::uint64_t seed,
                                 std::string label, std::size_t trace_events = 0) {
  exp::RunnerCell cell;
  cell.app = prepared.app.get();
  cell.db = &db;
  cell.ranges = prepared.qos_box;
  cell.params.kind = kind;
  cell.params.p_rc = p_rc;
  cell.params.sim.total_cycles = sim_cycles();
  cell.params.sim.trace_events = trace_events;
  cell.seed = seed;
  cell.label = std::move(label);
  return cell;
}

/// Paired per-replication combination of two cells (same replication index =
/// same derived-seed stream), summarized as mean ± CI. The benches use this
/// for the paper's percentage columns so the interval reflects seed noise of
/// the *comparison*, not of each side separately.
template <typename F>
util::Summary paired_summary(const exp::CellResult& a, const exp::CellResult& b, F&& combine) {
  util::RunningStats s;
  const std::size_t n = std::min(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < n; ++i) s.add(combine(a.runs[i], b.runs[i]));
  return util::summarize(s);
}

/// Percentage reduction of `ours` vs `theirs` (positive = we are lower).
inline double pct_reduction(double theirs, double ours) {
  if (theirs <= 0.0) return 0.0;
  return 100.0 * (theirs - ours) / theirs;
}

/// Percentage increase of `ours` vs `base` (positive = we are higher).
inline double pct_increase(double base, double ours) {
  if (base <= 0.0) return 0.0;
  return 100.0 * (ours - base) / base;
}

/// "mean ±ci" table cell.
inline std::string fmt_ci(const util::Summary& s, int precision = 1) {
  return util::TextTable::fmt(s.mean, precision) + " ±" +
         util::TextTable::fmt(s.ci95, precision);
}

/// Write a bench's replicated-grid JSON report when CLR_REPORT_DIR is set.
inline void write_report(const std::string& name, const io::Json& report) {
  const char* dir = std::getenv("CLR_REPORT_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  const std::string path = std::string(dir) + "/" + name + ".json";
  util::write_file(path, report.dump(2) + "\n");
  std::printf("[report] %s\n", path.c_str());
}

/// Enable the tracer when CLR_TRACE=<path> is set in the environment
/// (CLR_TRACE_CATEGORIES filters to a comma list, default all). Call once at
/// bench start; pair with trace_finish(). Returns the output path ("" = off).
inline std::string trace_setup() {
  const char* path = std::getenv("CLR_TRACE");
  if (path == nullptr || path[0] == '\0') return "";
  std::uint32_t mask = trace::kAllCategories;
  const char* cats = std::getenv("CLR_TRACE_CATEGORIES");
  if (cats != nullptr && cats[0] != '\0') mask = trace::parse_categories(cats);
  trace::Tracer::instance().enable(mask);
  return path;
}

/// Write the Chrome trace and per-span summary started by trace_setup().
inline void trace_finish(const std::string& path) {
  if (path.empty()) return;
  auto& tracer = trace::Tracer::instance();
  tracer.disable();
  util::write_file(path, tracer.chrome_trace().dump() + "\n");
  std::printf("%s[trace] %zu events written to %s\n", tracer.summary().c_str(),
              tracer.num_events(), path.c_str());
  tracer.clear();
}

inline void print_scale_note() {
  std::printf(
      "[scale] %s Monte-Carlo horizon: %.0f cycles, %zu replications/cell "
      "(CLR_FULL=%d CLR_SMOKE=%d)\n",
      full_scale() ? "paper-scale" : (smoke() ? "smoke-scale" : "bench-scale"), sim_cycles(),
      replications(), full_scale() ? 1 : 0, smoke() ? 1 : 0);
}

}  // namespace clr::bench
