#pragma once
// Shared setup for the table/figure reproduction harnesses.
//
// Scaling: the paper simulates one million application execution cycles per
// Monte-Carlo run (§5.2). The default here is 200k cycles so the whole bench
// suite finishes in a couple of minutes; set CLR_FULL=1 in the environment to
// run the paper-scale experiments.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "experiments/flow.hpp"

namespace clr::bench {

/// True when the CLR_FULL environment switch asks for paper-scale runs.
inline bool full_scale() {
  const char* env = std::getenv("CLR_FULL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Monte-Carlo horizon (application cycles).
inline double sim_cycles() { return full_scale() ? 1e6 : 2e5; }

/// The task counts of the paper's sweeps (Tables 4-7).
inline const std::vector<std::size_t>& paper_task_counts() {
  static const std::vector<std::size_t> counts{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  return counts;
}

/// Design-time GA parameters per §5.1, sized for bench runtimes.
inline dse::DseConfig bench_dse_config(std::size_t num_tasks) {
  dse::DseConfig cfg;
  cfg.base_ga.population = 64;
  cfg.base_ga.generations = num_tasks <= 40 ? 60 : 80;
  cfg.red_ga.population = 32;
  cfg.red_ga.generations = 24;
  cfg.max_red_seeds = 12;
  return cfg;
}

/// Run the full design-time flow for one synthetic application.
struct PreparedApp {
  std::unique_ptr<exp::AppInstance> app;
  exp::FlowResult flow;
  dse::MetricRanges qos_box;
};

inline PreparedApp prepare_app(std::size_t num_tasks, std::uint64_t experiment_tag,
                               dse::ObjectiveMode mode = dse::ObjectiveMode::EnergyQos) {
  PreparedApp prepared;
  prepared.app = exp::make_synthetic_app(num_tasks, exp::derive_seed(experiment_tag, num_tasks));
  exp::FlowParams params;
  params.dse = bench_dse_config(num_tasks);
  params.mode = mode;
  util::Rng rng(exp::derive_seed(experiment_tag ^ 0xD5Eu, num_tasks));
  prepared.flow = exp::run_design_flow(*prepared.app, params, rng);
  prepared.qos_box = exp::qos_ranges(prepared.flow);
  return prepared;
}

/// Runtime evaluation with the bench horizon.
inline rt::RuntimeStats run_policy(const PreparedApp& prepared, const dse::DesignDb& db,
                                   exp::PolicyKind kind, double p_rc, std::uint64_t seed,
                                   std::size_t trace_events = 0) {
  exp::RuntimeEvalParams params;
  params.kind = kind;
  params.p_rc = p_rc;
  params.sim.total_cycles = sim_cycles();
  params.sim.trace_events = trace_events;
  return exp::evaluate_policy(*prepared.app, db, prepared.qos_box, params, seed);
}

/// Runtime evaluation averaged over several Monte-Carlo seeds (smooths the
/// single-trajectory noise of greedy adaptation).
inline rt::RuntimeStats run_policy_avg(const PreparedApp& prepared, const dse::DesignDb& db,
                                       exp::PolicyKind kind, double p_rc, std::uint64_t seed,
                                       std::size_t repeats = 3) {
  rt::RuntimeStats acc;
  for (std::size_t r = 0; r < repeats; ++r) {
    const auto s = run_policy(prepared, db, kind, p_rc, seed + 0x9e37 * (r + 1));
    acc.total_cycles += s.total_cycles;
    acc.num_events += s.num_events;
    acc.num_reconfigs += s.num_reconfigs;
    acc.num_infeasible_events += s.num_infeasible_events;
    acc.avg_energy += s.avg_energy / static_cast<double>(repeats);
    acc.total_reconfig_cost += s.total_reconfig_cost;
    acc.max_drc = std::max(acc.max_drc, s.max_drc);
  }
  acc.avg_reconfig_cost = acc.num_events > 0
                              ? acc.total_reconfig_cost / static_cast<double>(acc.num_events)
                              : 0.0;
  return acc;
}

/// Percentage reduction of `ours` vs `theirs` (positive = we are lower).
inline double pct_reduction(double theirs, double ours) {
  if (theirs <= 0.0) return 0.0;
  return 100.0 * (theirs - ours) / theirs;
}

/// Percentage increase of `ours` vs `base` (positive = we are higher).
inline double pct_increase(double base, double ours) {
  if (base <= 0.0) return 0.0;
  return 100.0 * (ours - base) / base;
}

inline void print_scale_note() {
  std::printf("[scale] %s Monte-Carlo horizon: %.0f cycles (CLR_FULL=%d)\n",
              full_scale() ? "paper-scale" : "bench-scale", sim_cycles(), full_scale() ? 1 : 0);
}

}  // namespace clr::bench
