// google-benchmark micro-kernels for the library's hot paths: schedule
// evaluation, Table 2 metric evaluation, dRC computation, hypervolume,
// NSGA-II generations and run-time policy selection.

#include <benchmark/benchmark.h>

#include "dse/design_time.hpp"
#include "experiments/app.hpp"
#include "experiments/flow.hpp"
#include "moea/hypervolume.hpp"
#include "moea/nsga2.hpp"
#include "runtime/drc_matrix.hpp"
#include "runtime/simulator.hpp"

namespace {

using namespace clr;

/// Lazily built shared fixtures (one per task count).
struct Fixture {
  std::unique_ptr<exp::AppInstance> app;
  std::unique_ptr<dse::MappingProblem> problem;
  std::unique_ptr<recfg::ReconfigModel> reconfig;
  sched::Configuration cfg_a, cfg_b;
};

Fixture& fixture_for(std::size_t n) {
  static std::map<std::size_t, Fixture> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Fixture f;
    f.app = exp::make_synthetic_app(n, 12345 + n);
    f.problem = std::make_unique<dse::MappingProblem>(f.app->context(), dse::QosSpec{1e9, 0.0},
                                                      dse::ObjectiveMode::EnergyQos);
    f.reconfig = std::make_unique<recfg::ReconfigModel>(f.app->platform(), f.app->impls());
    util::Rng rng(n);
    f.cfg_a = f.problem->decode(f.problem->random_genes(rng));
    f.cfg_b = f.problem->decode(f.problem->random_genes(rng));
    it = cache.emplace(n, std::move(f)).first;
  }
  return it->second;
}

void BM_ScheduleEvaluation(benchmark::State& state) {
  auto& f = fixture_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.problem->evaluate_schedule(f.cfg_a));
  }
}
BENCHMARK(BM_ScheduleEvaluation)->Arg(10)->Arg(20)->Arg(50)->Arg(100);

void BM_TaskMetricsEvaluation(benchmark::State& state) {
  rel::MetricsModel model;
  rel::Implementation impl;
  impl.pe_type = 0;
  plat::PeType pe;
  pe.id = 0;
  const rel::ClrSpace space(rel::ClrGranularity::Full);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(impl, pe, space.config(i)));
    i = (i + 1) % space.size();
  }
}
BENCHMARK(BM_TaskMetricsEvaluation);

void BM_ReconfigCost(benchmark::State& state) {
  auto& f = fixture_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.reconfig->drc(f.cfg_a, f.cfg_b));
  }
}
BENCHMARK(BM_ReconfigCost)->Arg(10)->Arg(50)->Arg(100);

void BM_Hypervolume2d(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<std::array<double, 2>> pts;
  for (int i = 0; i < state.range(0); ++i) pts.push_back({rng.uniform(), rng.uniform()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(moea::hypervolume_2d(pts, {1.0, 1.0}));
  }
}
BENCHMARK(BM_Hypervolume2d)->Arg(16)->Arg(128);

void BM_Hypervolume3d(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<std::array<double, 3>> pts;
  for (int i = 0; i < state.range(0); ++i) {
    pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(moea::hypervolume_3d(pts, {1.0, 1.0, 1.0}));
  }
}
BENCHMARK(BM_Hypervolume3d)->Arg(16)->Arg(128);

void BM_Nsga2Generation(benchmark::State& state) {
  auto& f = fixture_for(20);
  moea::GaParams params;
  params.population = 32;
  params.generations = 1;
  moea::Nsga2 nsga(params);
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nsga.run(*f.problem, rng));
  }
}
BENCHMARK(BM_Nsga2Generation);

void BM_UraSelect(benchmark::State& state) {
  auto& f = fixture_for(20);
  // Small hand-rolled database from random configurations.
  dse::DesignDb db;
  util::Rng rng(4);
  for (int i = 0; i < 32; ++i) {
    const auto cfg = f.problem->decode(f.problem->random_genes(rng));
    const auto res = f.problem->evaluate_schedule(cfg);
    dse::DesignPoint p;
    p.config = cfg;
    p.energy = res.energy;
    p.makespan = res.makespan;
    p.func_rel = res.func_rel;
    db.add(p);
  }
  rt::DrcMatrix drc(db, *f.reconfig);
  rt::UraPolicy policy(db, drc, 0.5);
  const auto ranges = db.ranges();
  const dse::QosSpec spec{ranges.makespan_min + 0.7 * (ranges.makespan_max - ranges.makespan_min),
                          ranges.func_rel_min};
  std::size_t current = 0;
  for (auto _ : state) {
    current = policy.select(current, spec).point;
    benchmark::DoNotOptimize(current);
  }
}
BENCHMARK(BM_UraSelect);

void BM_DrcMatrixBuild(benchmark::State& state) {
  auto& f = fixture_for(50);
  dse::DesignDb db;
  util::Rng rng(5);
  for (int i = 0; i < state.range(0); ++i) {
    dse::DesignPoint p;
    p.config = f.problem->decode(f.problem->random_genes(rng));
    p.config.tasks[0].priority = 1000 + i;  // force uniqueness
    db.add(p);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::DrcMatrix(db, *f.reconfig));
  }
}
BENCHMARK(BM_DrcMatrixBuild)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
