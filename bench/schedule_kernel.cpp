// Schedule-evaluation kernel micro-bench (ISSUE 5 / DESIGN.md §5.9):
// single-thread throughput of the flat CompiledGraph kernel vs the
// pointer-based ReferenceScheduler on the Fig. 5 workload, plus a heap
// instrumentation that counts allocations per evaluation through a replaced
// global operator new (the kernel contract is 0 on a warm scratch).
//
// Emits machine-readable BENCH_schedule.json to $CLR_REPORT_DIR (or the
// working directory when unset):
//   reference.ns_per_eval / kernel.ns_per_eval / speedup  — this machine
//   normalized_ratio = kernel_ns / reference_ns           — machine-free
//   kernel.allocs_per_eval, bit_identical                 — contract checks
//
// CI regression gate: `schedule_kernel --check-baseline <baseline.json>`
// re-measures and fails (exit 1) when the normalized ratio regresses more
// than 20% over the checked-in baseline (the ratio divides out absolute
// machine speed; see EXPERIMENTS.md), when any allocation leaks into the
// steady-state kernel loop, when the kernel diverges from the reference
// oracle, or when the single-thread speedup drops below the 3x floor.
//
// Usage: schedule_kernel [--check-baseline <path>] [tasks] [seed]

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dse/mapping_problem.hpp"
#include "io/json.hpp"
#include "schedule/compiled_graph.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace clr;

struct Measurement {
  double ns_per_eval = 0.0;
  double evals_per_sec = 0.0;
  std::uint64_t evals = 0;
  std::uint64_t allocs = 0;
};

/// Run passes of `pass` (each = `batch` evaluations) until `target_seconds`
/// of wall clock have accumulated; reports per-eval cost and allocations.
template <typename F>
Measurement measure(double target_seconds, std::size_t batch, F&& pass) {
  using clock = std::chrono::steady_clock;
  Measurement m;
  const std::uint64_t alloc0 = g_alloc_count.load(std::memory_order_relaxed);
  const auto t0 = clock::now();
  double elapsed = 0.0;
  do {
    pass();
    m.evals += batch;
    elapsed = std::chrono::duration<double>(clock::now() - t0).count();
  } while (elapsed < target_seconds);
  m.allocs = g_alloc_count.load(std::memory_order_relaxed) - alloc0;
  m.ns_per_eval = elapsed * 1e9 / static_cast<double>(m.evals);
  m.evals_per_sec = static_cast<double>(m.evals) / elapsed;
  return m;
}

bool identical(const sched::ScheduleResult& a, const sched::ScheduleResult& b) {
  if (a.makespan != b.makespan || a.func_rel != b.func_rel || a.peak_power != b.peak_power ||
      a.energy != b.energy || a.system_mttf != b.system_mttf ||
      a.tasks.size() != b.tasks.size()) {
    return false;
  }
  for (std::size_t t = 0; t < a.tasks.size(); ++t) {
    if (a.tasks[t].start != b.tasks[t].start || a.tasks[t].end != b.tasks[t].end) return false;
  }
  return true;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("schedule_kernel: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::size_t tasks = !positional.empty()
                                ? static_cast<std::size_t>(std::atol(positional[0]))
                                : (bench::smoke() ? 10 : 40);
  const std::uint64_t seed = positional.size() > 1
                                 ? static_cast<std::uint64_t>(std::atoll(positional[1]))
                                 : exp::derive_seed(0xF165u, tasks);

  // The Fig. 5 workload: one synthetic app on the default HMPSoC with the
  // full CLR space; candidate configurations sampled uniformly from the
  // MappingProblem gene domains (the distribution the GA hot loop sees).
  const auto app = exp::make_synthetic_app(tasks, seed);
  const sched::EvalContext& ctx = app->context();
  const dse::MappingProblem problem(ctx, {1e9, 0.0}, dse::ObjectiveMode::EnergyQos);
  const std::size_t num_configs = bench::smoke() ? 64 : 256;

  util::Rng rng(exp::derive_seed(0xF165u ^ 0xBE7Cu, tasks));
  std::vector<sched::Configuration> configs;
  configs.reserve(num_configs);
  std::vector<int> genes(problem.num_genes());
  for (std::size_t c = 0; c < num_configs; ++c) {
    for (std::size_t i = 0; i < genes.size(); ++i) {
      genes[i] = static_cast<int>(rng.index(static_cast<std::size_t>(problem.domain_size(i))));
    }
    configs.push_back(problem.decode(genes));
  }

  const sched::CompiledGraph cg(ctx);
  const sched::ReferenceScheduler reference;
  sched::EvalScratch scratch;

  // Contract check first: every sampled configuration must evaluate
  // bit-identically through both paths.
  bool bit_identical = true;
  for (const auto& cfg : configs) {
    if (!identical(reference.run(ctx, cfg), cg.schedule(cfg, scratch))) {
      bit_identical = false;
      break;
    }
  }

  // Interleave short reference/kernel repetitions and keep the *fastest*
  // repetition of each: scheduler noise (this may be a single-core box) then
  // inflates both sides equally instead of landing on whichever side happened
  // to be measured when the interruption hit.
  const int reps = 5;
  const double target = (bench::smoke() ? 0.05 : 0.5) / reps;
  sched::KernelMetrics last{};
  Measurement ref, kern;
  for (int rep = 0; rep < reps; ++rep) {
    const auto r = measure(target, configs.size(), [&] {
      for (const auto& cfg : configs) {
        const auto res = reference.run(ctx, cfg);
        (void)res;
      }
    });
    // Kernel loop (scratch is warm from the contract check above).
    const auto k = measure(target, configs.size(), [&] {
      for (const auto& cfg : configs) last = cg.evaluate(cfg, scratch);
    });
    if (rep == 0 || r.ns_per_eval < ref.ns_per_eval) ref = r;
    if (rep == 0 || k.ns_per_eval < kern.ns_per_eval) kern = k;
    kern.allocs = std::max(kern.allocs, k.allocs);  // any rep allocating is a failure
  }

  const double speedup = ref.ns_per_eval / kern.ns_per_eval;
  const double ratio = kern.ns_per_eval / ref.ns_per_eval;
  const double allocs_per_eval =
      static_cast<double>(kern.allocs) / static_cast<double>(kern.evals);

  std::printf("schedule-evaluation kernel: %zu tasks, seed %llu, %zu configs, CLR space %zu\n",
              tasks, static_cast<unsigned long long>(seed), configs.size(),
              ctx.clr_space->size());
  std::printf("  reference: %9.1f ns/eval  (%.0f evals/sec, %llu evals)\n", ref.ns_per_eval,
              ref.evals_per_sec, static_cast<unsigned long long>(ref.evals));
  std::printf("  kernel:    %9.1f ns/eval  (%.0f evals/sec, %llu evals)\n", kern.ns_per_eval,
              kern.evals_per_sec, static_cast<unsigned long long>(kern.evals));
  std::printf("  speedup: %.2fx   allocs/eval: %.4f   bit-identical: %s\n", speedup,
              allocs_per_eval, bit_identical ? "yes" : "NO (BUG)");
  (void)last;

  io::Json report(io::JsonObject{
      {"workload", io::Json(io::JsonObject{{"tasks", io::Json(tasks)},
                                           {"seed", io::Json(seed)},
                                           {"num_configs", io::Json(configs.size())},
                                           {"clr_configs", io::Json(ctx.clr_space->size())}})},
      {"reference", io::Json(io::JsonObject{{"ns_per_eval", io::Json(ref.ns_per_eval)},
                                            {"evals_per_sec", io::Json(ref.evals_per_sec)}})},
      {"kernel", io::Json(io::JsonObject{{"ns_per_eval", io::Json(kern.ns_per_eval)},
                                         {"evals_per_sec", io::Json(kern.evals_per_sec)},
                                         {"allocs_per_eval", io::Json(allocs_per_eval)}})},
      {"speedup", io::Json(speedup)},
      {"normalized_ratio", io::Json(ratio)},
      {"bit_identical", io::Json(bit_identical)},
  });

  const char* dir = std::getenv("CLR_REPORT_DIR");
  const std::string out_path =
      (dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : std::string())
      + "BENCH_schedule.json";
  util::write_file(out_path, report.dump(2) + "\n");
  std::printf("[report] %s\n", out_path.c_str());

  bool ok = bit_identical;
  if (allocs_per_eval > 0.0) {
    std::printf("FAIL: kernel steady-state loop allocated (%.4f allocs/eval, want 0)\n",
                allocs_per_eval);
    ok = false;
  }
  if (!baseline_path.empty()) {
    const io::Json baseline = io::Json::parse(read_text_file(baseline_path));
    const double base_ratio = baseline.at("normalized_ratio").as_number();
    const double limit = base_ratio * 1.2;
    std::printf("baseline check: normalized ratio %.4f vs baseline %.4f (limit %.4f)\n", ratio,
                base_ratio, limit);
    if (ratio > limit) {
      std::printf("FAIL: kernel ns/eval regressed >20%% vs baseline\n");
      ok = false;
    }
    if (speedup < 3.0) {
      std::printf("FAIL: single-thread speedup %.2fx below the 3x acceptance floor\n", speedup);
      ok = false;
    }
  }
  if (!bit_identical) std::printf("FAIL: kernel diverges from ReferenceScheduler\n");
  return ok ? 0 : 1;
}
