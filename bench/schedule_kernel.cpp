// Schedule-evaluation kernel micro-bench (ISSUE 5+6 / DESIGN.md §5.9-5.10):
// single-thread throughput of the flat CompiledGraph kernel and the batched
// SoA kernel vs the pointer-based ReferenceScheduler on the Fig. 5 workload,
// plus a heap instrumentation that counts allocations per evaluation through
// a replaced global operator new (both kernel contracts are 0 on warm
// scratch, including the batched transpose staging).
//
// Emits machine-readable BENCH_schedule.json to $CLR_REPORT_DIR (or the
// working directory when unset):
//   reference / kernel / batched ns_per_eval, speedup     — this machine
//   normalized_ratio[_batched] = *_ns / reference_ns      — machine-free
//   *.allocs_per_eval, bit_identical, batched_bit_identical — contracts
//   batched.lanes / batched.simd_backend                  — provenance
//
// CI regression gate: `schedule_kernel --check-baseline <baseline.json>`
// re-measures and fails (exit 1) when the scalar or batched normalized
// ratio regresses more than 20% over the checked-in baseline (the ratio
// divides out absolute machine speed; see EXPERIMENTS.md), when any
// allocation leaks into either steady-state loop, when either kernel
// diverges from the reference oracle or the batched path diverges from the
// scalar kernel by a single bit, when the single-thread scalar speedup
// drops below the baseline's speedup_floor, or when the batched path falls
// under its batched_speedup_floor vs the scalar kernel at batch >= 8. The
// floors live in the baseline file next to the workload they were
// calibrated for (the smoke workload CI runs); perf gates get up to three
// measurement attempts before failing, contract gates never retry.
//
// Usage: schedule_kernel [--check-baseline <path>] [tasks] [seed]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <span>

#include "bench_common.hpp"
#include "common/simd.hpp"
#include "dse/mapping_problem.hpp"
#include "io/json.hpp"
#include "schedule/batch.hpp"
#include "schedule/compiled_graph.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace clr;

/// Per-side tallies across all measurement rounds.
struct Measurement {
  double ns_per_eval = 0.0;
  double evals_per_sec = 0.0;
  std::uint64_t evals = 0;
  std::uint64_t allocs = 0;
};

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

bool identical(const sched::ScheduleResult& a, const sched::ScheduleResult& b) {
  if (a.makespan != b.makespan || a.func_rel != b.func_rel || a.peak_power != b.peak_power ||
      a.energy != b.energy || a.system_mttf != b.system_mttf ||
      a.tasks.size() != b.tasks.size()) {
    return false;
  }
  for (std::size_t t = 0; t < a.tasks.size(); ++t) {
    if (a.tasks[t].start != b.tasks[t].start || a.tasks[t].end != b.tasks[t].end) return false;
  }
  return true;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("schedule_kernel: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::size_t tasks = !positional.empty()
                                ? static_cast<std::size_t>(std::atol(positional[0]))
                                : (bench::smoke() ? 10 : 40);
  const std::uint64_t seed = positional.size() > 1
                                 ? static_cast<std::uint64_t>(std::atoll(positional[1]))
                                 : exp::derive_seed(0xF165u, tasks);

  // The Fig. 5 workload: one synthetic app on the default HMPSoC with the
  // full CLR space; candidate configurations sampled uniformly from the
  // MappingProblem gene domains (the distribution the GA hot loop sees).
  const auto app = exp::make_synthetic_app(tasks, seed);
  const sched::EvalContext& ctx = app->context();
  const dse::MappingProblem problem(ctx, {1e9, 0.0}, dse::ObjectiveMode::EnergyQos);
  // Population-scale sample even at smoke: with few distinct configurations
  // the branch predictor memorizes the scalar kernel's entire evaluation
  // sequence across passes (observed to flatter it ~2x at 64 configs), which
  // no GA run — fresh offspring every generation — ever resembles.
  const std::size_t num_configs = 256;

  util::Rng rng(exp::derive_seed(0xF165u ^ 0xBE7Cu, tasks));
  std::vector<sched::Configuration> configs;
  configs.reserve(num_configs);
  std::vector<int> genes(problem.num_genes());
  for (std::size_t c = 0; c < num_configs; ++c) {
    for (std::size_t i = 0; i < genes.size(); ++i) {
      genes[i] = static_cast<int>(rng.index(static_cast<std::size_t>(problem.domain_size(i))));
    }
    configs.push_back(problem.decode(genes));
  }

  const sched::CompiledGraph cg(ctx);
  const sched::ReferenceScheduler reference;
  sched::EvalScratch scratch;

  // Contract check first: every sampled configuration must evaluate
  // bit-identically through both paths.
  bool bit_identical = true;
  for (const auto& cfg : configs) {
    if (!identical(reference.run(ctx, cfg), cg.schedule(cfg, scratch))) {
      bit_identical = false;
      break;
    }
  }

  // Batched contract: evaluate_batch over the whole sample must match the
  // scalar kernel metric-for-metric, bit-for-bit (and through it the
  // reference oracle checked above).
  sched::BatchScratch batch_scratch;
  std::vector<sched::KernelMetrics> batched_out(configs.size());
  cg.evaluate_batch({configs.data(), configs.size()}, batch_scratch,
                    {batched_out.data(), batched_out.size()});
  bool batched_bit_identical = true;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const sched::KernelMetrics m = cg.evaluate(configs[c], scratch);
    const sched::KernelMetrics& b = batched_out[c];
    if (m.makespan != b.makespan || m.func_rel != b.func_rel || m.peak_power != b.peak_power ||
        m.energy != b.energy || m.system_mttf != b.system_mttf) {
      batched_bit_identical = false;
      break;
    }
  }

  // Fine-grained paired measurement: each round times exactly one pass over
  // the whole sample per side, back to back (reference, kernel, batched), and
  // every reported ratio/speedup is the MEDIAN over rounds of the within-
  // round pairing. The three passes of a round run ~0.1-0.6 ms apart under
  // the same clock/cache state, so frequency drift (turbo ramps, thermal
  // steps — a real 2x effect on small cloud boxes) divides out of each pair,
  // and with hundreds of rounds the median shrugs off any round that caught
  // a scheduler interruption. Coarser schemes (min-of-windows per side,
  // measured independently) were observed to swing the batched ratio by 2x
  // run to run on a single-core box. Absolute ns/eval fields are the median
  // round as well — robust in both directions, unlike a min.
  using clock = std::chrono::steady_clock;
  const double target = bench::smoke() ? 0.35 : 1.5;  // total, all sides
  sched::KernelMetrics last{};

  struct Stats {
    Measurement ref, kern, batched;
    double speedup = 0.0, ratio = 0.0;
    double batched_speedup = 0.0, batched_ratio = 0.0;
    double allocs_per_eval = 0.0, batched_allocs_per_eval = 0.0;
  };
  const auto measure = [&]() {
    Stats st;
    std::vector<double> r_ns, k_ns, b_ns;
    const auto t_begin = clock::now();
    do {
      const std::uint64_t a0 = g_alloc_count.load(std::memory_order_relaxed);
      const auto t0 = clock::now();
      for (const auto& cfg : configs) {
        const auto res = reference.run(ctx, cfg);
        (void)res;
      }
      // Kernel pass (scratch is warm from the contract check above).
      const std::uint64_t a1 = g_alloc_count.load(std::memory_order_relaxed);
      const auto t1 = clock::now();
      for (const auto& cfg : configs) last = cg.evaluate(cfg, scratch);
      // Batched pass: the whole sample in kLanes-wide SoA blocks
      // (batch_scratch and batched_out are warm from the contract check).
      const std::uint64_t a2 = g_alloc_count.load(std::memory_order_relaxed);
      const auto t2 = clock::now();
      cg.evaluate_batch({configs.data(), configs.size()}, batch_scratch,
                        {batched_out.data(), batched_out.size()});
      const std::uint64_t a3 = g_alloc_count.load(std::memory_order_relaxed);
      const auto t3 = clock::now();
      const double per = 1e9 / static_cast<double>(configs.size());
      r_ns.push_back(std::chrono::duration<double>(t1 - t0).count() * per);
      k_ns.push_back(std::chrono::duration<double>(t2 - t1).count() * per);
      b_ns.push_back(std::chrono::duration<double>(t3 - t2).count() * per);
      st.ref.evals += configs.size();
      st.kern.evals += configs.size();
      st.batched.evals += configs.size();
      st.kern.allocs += a2 - a1;
      st.batched.allocs += a3 - a2;
      (void)a0;
    } while (std::chrono::duration<double>(clock::now() - t_begin).count() < target);

    std::vector<double> rr_speedup(r_ns.size()), rr_bspeedup(r_ns.size()), rr_bratio(r_ns.size());
    for (std::size_t i = 0; i < r_ns.size(); ++i) {
      rr_speedup[i] = r_ns[i] / k_ns[i];
      rr_bspeedup[i] = k_ns[i] / b_ns[i];
      rr_bratio[i] = b_ns[i] / r_ns[i];
    }
    st.ref.ns_per_eval = median_of(r_ns);
    st.kern.ns_per_eval = median_of(k_ns);
    st.batched.ns_per_eval = median_of(b_ns);
    st.ref.evals_per_sec = 1e9 / st.ref.ns_per_eval;
    st.kern.evals_per_sec = 1e9 / st.kern.ns_per_eval;
    st.batched.evals_per_sec = 1e9 / st.batched.ns_per_eval;
    st.speedup = median_of(rr_speedup);
    st.ratio = 1.0 / st.speedup;
    st.allocs_per_eval = static_cast<double>(st.kern.allocs) / static_cast<double>(st.kern.evals);
    st.batched_speedup = median_of(rr_bspeedup);
    st.batched_ratio = median_of(rr_bratio);
    st.batched_allocs_per_eval =
        static_cast<double>(st.batched.allocs) / static_cast<double>(st.batched.evals);
    return st;
  };

  // Regression limits and acceptance floors come from the baseline file,
  // which records the workload they were calibrated against (hardcoded
  // fallbacks keep a floor-less baseline meaningful).
  double base_ratio = 0.0, base_bratio = 0.0;
  double speedup_floor = 3.0, batched_floor = 2.0;
  bool have_bbase = false;
  if (!baseline_path.empty()) {
    const io::Json baseline = io::Json::parse(read_text_file(baseline_path));
    base_ratio = baseline.at("normalized_ratio").as_number();
    if (const io::Json* f = baseline.find("speedup_floor")) speedup_floor = f->as_number();
    if (const io::Json* b = baseline.find("normalized_ratio_batched")) {
      base_bratio = b->as_number();
      have_bbase = true;
      if (const io::Json* f = baseline.find("batched_speedup_floor")) {
        batched_floor = f->as_number();
      }
    }
  }

  // The paired-median scheme is robust to interruptions within a run, but a
  // clock/thermal state that holds for a whole run still shifts the ratios
  // a few percent on small cloud boxes (a gate run right after a hot build
  // measures a down-clocked core, where the batched/kernel ratio is a few
  // percent worse), and a hard floor should not flake on that: a perf-gated
  // run re-measures up to three times, with a short cool-down first so the
  // core can leave the sustained-load clock state. Contract gates (bits,
  // allocs) are deterministic and never retried.
  Stats st = measure();
  for (int attempt = 1; attempt < 3 && !baseline_path.empty(); ++attempt) {
    const bool perf_ok =
        st.speedup >= speedup_floor && st.ratio <= base_ratio * 1.2 &&
        (!have_bbase ||
         (st.batched_speedup >= batched_floor && st.batched_ratio <= base_bratio * 1.2));
    if (perf_ok) break;
    std::printf("note: perf gates missed (attempt %d/3), re-measuring after cool-down\n", attempt);
    std::this_thread::sleep_for(std::chrono::seconds(3));
    st = measure();
  }

  const Measurement& ref = st.ref;
  const Measurement& kern = st.kern;
  const Measurement& batched = st.batched;
  const double speedup = st.speedup;
  const double ratio = st.ratio;
  const double allocs_per_eval = st.allocs_per_eval;
  const double batched_speedup_vs_kernel = st.batched_speedup;
  const double batched_ratio = st.batched_ratio;
  const double batched_allocs_per_eval = st.batched_allocs_per_eval;

  std::printf("schedule-evaluation kernel: %zu tasks, seed %llu, %zu configs, CLR space %zu\n",
              tasks, static_cast<unsigned long long>(seed), configs.size(),
              ctx.clr_space->size());
  std::printf("  reference: %9.1f ns/eval  (%.0f evals/sec, %llu evals)\n", ref.ns_per_eval,
              ref.evals_per_sec, static_cast<unsigned long long>(ref.evals));
  std::printf("  kernel:    %9.1f ns/eval  (%.0f evals/sec, %llu evals)\n", kern.ns_per_eval,
              kern.evals_per_sec, static_cast<unsigned long long>(kern.evals));
  std::printf("  batched:   %9.1f ns/eval  (%.0f evals/sec, %llu evals, %zu lanes, %s)\n",
              batched.ns_per_eval, batched.evals_per_sec,
              static_cast<unsigned long long>(batched.evals), sched::BatchGenomes::kLanes,
              sched::CompiledGraph::batch_backend());
  std::printf("  speedup: %.2fx   allocs/eval: %.4f   bit-identical: %s\n", speedup,
              allocs_per_eval, bit_identical ? "yes" : "NO (BUG)");
  std::printf("  batched speedup vs kernel: %.2fx   allocs/eval: %.4f   bit-identical: %s\n",
              batched_speedup_vs_kernel, batched_allocs_per_eval,
              batched_bit_identical ? "yes" : "NO (BUG)");
  (void)last;

  io::Json report(io::JsonObject{
      {"workload", io::Json(io::JsonObject{{"tasks", io::Json(tasks)},
                                           {"seed", io::Json(seed)},
                                           {"num_configs", io::Json(configs.size())},
                                           {"clr_configs", io::Json(ctx.clr_space->size())}})},
      {"reference", io::Json(io::JsonObject{{"ns_per_eval", io::Json(ref.ns_per_eval)},
                                            {"evals_per_sec", io::Json(ref.evals_per_sec)}})},
      {"kernel", io::Json(io::JsonObject{{"ns_per_eval", io::Json(kern.ns_per_eval)},
                                         {"evals_per_sec", io::Json(kern.evals_per_sec)},
                                         {"allocs_per_eval", io::Json(allocs_per_eval)}})},
      {"batched",
       io::Json(io::JsonObject{{"ns_per_eval", io::Json(batched.ns_per_eval)},
                               {"evals_per_sec", io::Json(batched.evals_per_sec)},
                               {"allocs_per_eval", io::Json(batched_allocs_per_eval)},
                               {"lanes", io::Json(sched::BatchGenomes::kLanes)},
                               {"simd_backend", io::Json(std::string(sched::CompiledGraph::batch_backend()))}})},
      {"speedup", io::Json(speedup)},
      {"batched_speedup_vs_kernel", io::Json(batched_speedup_vs_kernel)},
      {"normalized_ratio", io::Json(ratio)},
      {"normalized_ratio_batched", io::Json(batched_ratio)},
      {"bit_identical", io::Json(bit_identical)},
      {"batched_bit_identical", io::Json(batched_bit_identical)},
  });

  const char* dir = std::getenv("CLR_REPORT_DIR");
  const std::string out_path =
      (dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : std::string())
      + "BENCH_schedule.json";
  util::write_file(out_path, report.dump(2) + "\n");
  std::printf("[report] %s\n", out_path.c_str());

  bool ok = bit_identical && batched_bit_identical;
  if (allocs_per_eval > 0.0) {
    std::printf("FAIL: kernel steady-state loop allocated (%.4f allocs/eval, want 0)\n",
                allocs_per_eval);
    ok = false;
  }
  if (batched_allocs_per_eval > 0.0) {
    std::printf("FAIL: batched steady-state loop allocated (%.4f allocs/eval, want 0)\n",
                batched_allocs_per_eval);
    ok = false;
  }
  if (!baseline_path.empty()) {
    const double limit = base_ratio * 1.2;
    std::printf("baseline check: normalized ratio %.4f vs baseline %.4f (limit %.4f)\n", ratio,
                base_ratio, limit);
    if (ratio > limit) {
      std::printf("FAIL: kernel ns/eval regressed >20%% vs baseline\n");
      ok = false;
    }
    if (speedup < speedup_floor) {
      std::printf("FAIL: single-thread speedup %.2fx below the %.2fx acceptance floor\n", speedup,
                  speedup_floor);
      ok = false;
    }
    // Batched gates; the baseline field is optional so a pre-batch baseline
    // file still checks the scalar kernel.
    if (have_bbase) {
      const double blimit = base_bratio * 1.2;
      std::printf("baseline check: batched ratio %.4f vs baseline %.4f (limit %.4f)\n",
                  batched_ratio, base_bratio, blimit);
      if (batched_ratio > blimit) {
        std::printf("FAIL: batched ns/eval regressed >20%% vs baseline\n");
        ok = false;
      }
      if (batched_speedup_vs_kernel < batched_floor) {
        std::printf("FAIL: batched speedup %.2fx vs the scalar kernel below the %.2fx floor\n",
                    batched_speedup_vs_kernel, batched_floor);
        ok = false;
      }
    }
  }
  if (!bit_identical) std::printf("FAIL: kernel diverges from ReferenceScheduler\n");
  if (!batched_bit_identical) std::printf("FAIL: batched path diverges from the scalar kernel\n");
  return ok ? 0 : 1;
}
