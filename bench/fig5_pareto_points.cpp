// Figure 5 reproduction: the stored design points for the 80-task
// application — the Pareto front from the system-level MOEA plus the
// additional non-dominant points ('>' markers) contributed by the
// reconfiguration-cost-aware optimization (ReD, §4.2.1).
//
// Expected shape: the extras sit off the Pareto front (within the QoS
// tolerance band) but are cheaper to reach (lower average dRC to the front).

#include "bench_common.hpp"
#include "common/table.hpp"
#include "runtime/drc_matrix.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  const std::size_t n = bench::full_scale() ? 80 : 40;
  std::printf("Figure 5: Pareto front + reconfiguration-cost-aware extras (%zu-task app)\n\n", n);

  const auto prepared = bench::prepare_app(n, /*tag=*/0xF165);
  recfg::ReconfigModel reconfig(prepared.app->platform(), prepared.app->impls());
  const auto base_configs = prepared.flow.based.configurations();

  util::TextTable table("stored design points (marker '>' = ReD extra)");
  table.set_header({"marker", "Sapp (makespan)", "Japp (energy)", "Fapp", "avg dRC to front"});
  for (const auto& p : prepared.flow.red.points()) {
    table.add_row({p.extra ? ">" : "*", util::TextTable::fmt(p.makespan, 1),
                   util::TextTable::fmt(p.energy, 2), util::TextTable::fmt(p.func_rel, 5),
                   util::TextTable::fmt(reconfig.average_drc(p.config, base_configs), 2)});
  }
  std::printf("%s", table.to_string().c_str());

  // Shape summary: extras must be cheaper to reach on average than the front.
  double front_drc = 0.0, extra_drc = 0.0;
  std::size_t front_n = 0, extra_n = 0;
  for (const auto& p : prepared.flow.red.points()) {
    const double d = reconfig.average_drc(p.config, base_configs);
    if (p.extra) {
      extra_drc += d;
      ++extra_n;
    } else {
      front_drc += d;
      ++front_n;
    }
  }
  std::printf("\nPareto points: %zu (mean avg-dRC %.2f); extras: %zu (mean avg-dRC %.2f)\n",
              front_n, front_n ? front_drc / front_n : 0.0, extra_n,
              extra_n ? extra_drc / extra_n : 0.0);
  std::printf("paper shape: extras are additional non-dominant points marked '>' that are\n"
              "cheaper to reach than the pure Pareto-front points.\n");
  return 0;
}
