// Figure 6 reproduction: the task-migration cost incurred in reaction to the
// first 50 QoS-requirement changes, comparing
//   BaseD — the purely performance-oriented Pareto database with the
//           hypervolume-best-on-every-event policy ([11]-style), and
//   ReD   — the reconfiguration-cost-aware database with cost-aware uRA
//           (pRC = 0: adapt only on violation).
//
// The per-event trace is shown for the first replication; the window-level
// aggregates (reconfiguration count, max dRC) are computed per replication
// and reported mean ± 95% CI over the exp::Runner's Monte-Carlo replications.
//
// Expected shape (paper, 80-task app): BaseD reconfigures more often in the
// window (31 vs 24 in the paper), adapts continuously in regions where ReD
// stays put ("region A"), and hits a much larger maximum cost (ΔdRC).

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  const std::string trace_path = bench::trace_setup();
  const std::size_t n = bench::smoke() ? 10 : (bench::full_scale() ? 80 : 40);
  std::printf("Figure 6: reconfiguration-cost trace over 50 QoS changes (%zu-task app)\n\n", n);

  const auto prepared = bench::prepare_app(n, /*tag=*/0xF166);
  const std::uint64_t seed = exp::derive_seed(0xF166u ^ 0xffu, n);
  constexpr std::size_t kWindow = 50;

  exp::Runner runner(bench::runner_config());
  runner.add_cell(bench::make_cell(prepared, prepared.flow.based, exp::PolicyKind::Baseline,
                                   0.5, seed, "BaseD baseline", kWindow));
  runner.add_cell(bench::make_cell(prepared, prepared.flow.red, exp::PolicyKind::Ura, 0.0,
                                   seed, "ReD uRA pRC=0", kWindow));
  const auto results = runner.run();
  const exp::CellResult& based = results[0];
  const exp::CellResult& red = results[1];

  // Per-event trace of the first replication.
  const auto& based_trace = based.runs.front().trace;
  const auto& red_trace = red.runs.front().trace;
  util::TextTable table("dRC per QoS-change event (same event sequence, replication 0)");
  table.set_header({"event", "BaseD dRC", "ReD dRC"});
  for (std::size_t i = 0; i < kWindow; ++i) {
    const double b = i < based_trace.size() ? based_trace[i].drc : 0.0;
    const double r = i < red_trace.size() ? red_trace[i].drc : 0.0;
    table.add_row({std::to_string(i + 1), util::TextTable::fmt(b, 2), util::TextTable::fmt(r, 2)});
  }
  std::printf("%s", table.to_string().c_str());

  // Window aggregates across replications.
  const auto window_reconfigs = [](const rt::RuntimeStats& s) {
    std::size_t count = 0;
    for (const auto& e : s.trace) count += e.reconfigured ? 1 : 0;
    return static_cast<double>(count);
  };
  const auto window_max = [](const rt::RuntimeStats& s) {
    double mx = 0.0;
    for (const auto& e : s.trace) mx = std::max(mx, e.drc);
    return mx;
  };
  util::RunningStats based_rc, red_rc, based_mx, red_mx;
  for (const auto& run : based.runs) {
    based_rc.add(window_reconfigs(run));
    based_mx.add(window_max(run));
  }
  for (const auto& run : red.runs) {
    red_rc.add(window_reconfigs(run));
    red_mx.add(window_max(run));
  }

  std::printf("\nreconfigurations in window: BaseD %s vs ReD %s (paper: 31 vs 24)\n",
              bench::fmt_ci(util::summarize(based_rc), 1).c_str(),
              bench::fmt_ci(util::summarize(red_rc), 1).c_str());
  std::printf("max dRC in window (delta-dRC): BaseD %s vs ReD %s\n",
              bench::fmt_ci(util::summarize(based_mx), 2).c_str(),
              bench::fmt_ci(util::summarize(red_mx), 2).c_str());
  std::printf("full-run averages: BaseD avg dRC/event %s, ReD %s\n",
              bench::fmt_ci(based.stats.avg_reconfig_cost, 3).c_str(),
              bench::fmt_ci(red.stats.avg_reconfig_cost, 3).c_str());
  std::printf("paper shape: the performance-oriented approach reconfigures more often and with\n"
              "a considerably larger maximum cost; the cost-aware approach adapts only on QoS\n"
              "violations.\n");
  bench::write_report("fig6_reconfig_trace",
                      exp::grid_report("fig6_reconfig_trace", runner.config(), results,
                                       &runner.metrics()));
  bench::trace_finish(trace_path);
  return 0;
}
