// Figure 6 reproduction: the task-migration cost incurred in reaction to the
// first 50 QoS-requirement changes, comparing
//   BaseD — the purely performance-oriented Pareto database with the
//           hypervolume-best-on-every-event policy ([11]-style), and
//   ReD   — the reconfiguration-cost-aware database with cost-aware uRA
//           (pRC = 0: adapt only on violation).
//
// Expected shape (paper, 80-task app): BaseD reconfigures more often in the
// window (31 vs 24 in the paper), adapts continuously in regions where ReD
// stays put ("region A"), and hits a much larger maximum cost (ΔdRC).

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  const std::size_t n = bench::full_scale() ? 80 : 40;
  std::printf("Figure 6: reconfiguration-cost trace over 50 QoS changes (%zu-task app)\n\n", n);

  const auto prepared = bench::prepare_app(n, /*tag=*/0xF166);
  const std::uint64_t seed = exp::derive_seed(0xF166u ^ 0xffu, n);
  constexpr std::size_t kWindow = 50;

  const auto based = bench::run_policy(prepared, prepared.flow.based, exp::PolicyKind::Baseline,
                                       0.5, seed, kWindow);
  const auto red =
      bench::run_policy(prepared, prepared.flow.red, exp::PolicyKind::Ura, 0.0, seed, kWindow);

  util::TextTable table("dRC per QoS-change event (same event sequence)");
  table.set_header({"event", "BaseD dRC", "ReD dRC"});
  double based_max = 0.0, red_max = 0.0;
  std::size_t based_reconfigs = 0, red_reconfigs = 0;
  for (std::size_t i = 0; i < kWindow; ++i) {
    const double b = i < based.trace.size() ? based.trace[i].drc : 0.0;
    const double r = i < red.trace.size() ? red.trace[i].drc : 0.0;
    based_max = std::max(based_max, b);
    red_max = std::max(red_max, r);
    if (i < based.trace.size() && based.trace[i].reconfigured) ++based_reconfigs;
    if (i < red.trace.size() && red.trace[i].reconfigured) ++red_reconfigs;
    table.add_row({std::to_string(i + 1), util::TextTable::fmt(b, 2), util::TextTable::fmt(r, 2)});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nreconfigurations in window: BaseD %zu vs ReD %zu (paper: 31 vs 24)\n",
              based_reconfigs, red_reconfigs);
  std::printf("max dRC in window (delta-dRC): BaseD %.2f vs ReD %.2f\n", based_max, red_max);
  std::printf("full-run averages: BaseD avg dRC/event %.3f, ReD %.3f\n", based.avg_reconfig_cost,
              red.avg_reconfig_cost);
  std::printf("paper shape: the performance-oriented approach reconfigures more often and with\n"
              "a considerably larger maximum cost; the cost-aware approach adapts only on QoS\n"
              "violations.\n");
  return 0;
}
