// Table 5 reproduction: on a single set of design points (the ReD database),
// compare reconfiguration-cost minimization (uRA with pRC = 0) against
// performance maximization (pRC = 1):
//   row 1 — % reduction in average reconfiguration cost,
//   row 2 — % increase in average energy consumption (the price paid).
//
// Paper reference values:
//   reduction: 38 45 28  8 51 44 30 49 43 39
//   increase:  10 13  4  0  4  1  0  2  2  2
// Expected shape: large cost reductions at a small single-digit-ish energy
// premium.

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf(
      "Table 5: reconfiguration-cost minimization (pRC=0) vs performance maximization (pRC=1)\n"
      "on a single design-point set (the Pareto database)\n\n");

  util::TextTable table;
  std::vector<std::string> header{"Number of Tasks"};
  std::vector<std::string> row_cost{"% Reduction in Avg Reconfiguration cost"};
  std::vector<std::string> row_energy{"% Increase in Avg Energy Consumption"};

  for (std::size_t n : bench::paper_task_counts()) {
    const auto prepared = bench::prepare_app(n, /*tag=*/0x7ab1e5);
    const std::uint64_t seed = exp::derive_seed(0x7ab1e5u ^ 0xffu, n);

    const auto perf = bench::run_policy_avg(prepared, prepared.flow.based, exp::PolicyKind::Ura,
                                        /*p_rc=*/1.0, seed);
    const auto cost = bench::run_policy_avg(prepared, prepared.flow.based, exp::PolicyKind::Ura,
                                        /*p_rc=*/0.0, seed);

    header.push_back(std::to_string(n));
    row_cost.push_back(util::TextTable::fmt(
        bench::pct_reduction(perf.avg_reconfig_cost, cost.avg_reconfig_cost), 1));
    row_energy.push_back(
        util::TextTable::fmt(bench::pct_increase(perf.avg_energy, cost.avg_energy), 1));
    std::printf("  [n=%3zu] pRC=1: J=%.2f dRC=%.3f | pRC=0: J=%.2f dRC=%.3f\n", n,
                perf.avg_energy, perf.avg_reconfig_cost, cost.avg_energy,
                cost.avg_reconfig_cost);
  }

  table.set_header(header);
  table.add_row(row_cost);
  table.add_row(row_energy);
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\npaper (Table 5): reduction 38 45 28 8 51 44 30 49 43 39; increase 10 13 4 0 4 1 0 2 2 2\n");
  return 0;
}
