// Table 5 reproduction: on a single set of design points (the BaseD Pareto
// database), compare reconfiguration-cost minimization (uRA with pRC = 0)
// against performance maximization (pRC = 1):
//   row 1 — % reduction in average reconfiguration cost,
//   row 2 — % increase in average energy consumption (the price paid).
//
// Paper reference values:
//   reduction: 38 45 28  8 51 44 30 49 43 39
//   increase:  10 13  4  0  4  1  0  2  2  2
// Expected shape: large cost reductions at a small single-digit-ish energy
// premium. Percentages are computed per replication (paired on the
// replication seed) and reported mean ± 95% CI over the exp::Runner's
// Monte-Carlo replications.

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf(
      "Table 5: reconfiguration-cost minimization (pRC=0) vs performance maximization (pRC=1)\n"
      "on a single design-point set (the Pareto database)\n\n");

  // Both pRC cells of one app share the same (app, BaseD) cost matrix via
  // the Runner's cache; the whole grid fans out in one run().
  std::vector<bench::PreparedApp> apps;
  exp::Runner runner(bench::runner_config());
  const auto& sizes = bench::paper_task_counts();
  apps.reserve(sizes.size());
  for (std::size_t n : sizes) {
    apps.push_back(bench::prepare_app(n, /*tag=*/0x7ab1e5));
    const auto& prepared = apps.back();
    const std::uint64_t seed = exp::derive_seed(0x7ab1e5u ^ 0xffu, n);
    runner.add_cell(bench::make_cell(prepared, prepared.flow.based, exp::PolicyKind::Ura,
                                     /*p_rc=*/1.0, seed, "n=" + std::to_string(n) + " pRC=1"));
    runner.add_cell(bench::make_cell(prepared, prepared.flow.based, exp::PolicyKind::Ura,
                                     /*p_rc=*/0.0, seed, "n=" + std::to_string(n) + " pRC=0"));
  }
  const auto results = runner.run();

  util::TextTable table;
  std::vector<std::string> header{"Number of Tasks"};
  std::vector<std::string> row_cost{"% Reduction in Avg Reconfiguration cost"};
  std::vector<std::string> row_energy{"% Increase in Avg Energy Consumption"};
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const exp::CellResult& perf = results[2 * i];
    const exp::CellResult& cost = results[2 * i + 1];
    const auto reduction = bench::paired_summary(
        perf, cost, [](const rt::RuntimeStats& p, const rt::RuntimeStats& c) {
          return bench::pct_reduction(p.avg_reconfig_cost, c.avg_reconfig_cost);
        });
    const auto increase = bench::paired_summary(
        perf, cost, [](const rt::RuntimeStats& p, const rt::RuntimeStats& c) {
          return bench::pct_increase(p.avg_energy, c.avg_energy);
        });
    header.push_back(std::to_string(sizes[i]));
    row_cost.push_back(bench::fmt_ci(reduction, 1));
    row_energy.push_back(bench::fmt_ci(increase, 1));
    std::printf("  [n=%3zu] pRC=1: J=%.2f dRC=%.3f | pRC=0: J=%.2f dRC=%.3f\n", sizes[i],
                perf.stats.avg_energy.mean, perf.stats.avg_reconfig_cost.mean,
                cost.stats.avg_energy.mean, cost.stats.avg_reconfig_cost.mean);
  }

  table.set_header(header);
  table.add_row(row_cost);
  table.add_row(row_energy);
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\npaper (Table 5): reduction 38 45 28 8 51 44 30 49 43 39; increase 10 13 4 0 4 1 0 2 2 2\n");
  bench::write_report("table5_reconfig_tradeoff",
                      exp::grid_report("table5_reconfig_tradeoff", runner.config(), results,
                                       &runner.metrics()));
  return 0;
}
