// Policy-regret benchmark + CI regression gate (ISSUE 10, DESIGN.md §5.14).
//
// Measures how far each adaptation policy ends from the best policy of the
// round on one sampled design database under a drifting (AR(1)) QoS process
// with fault injection, and how much reconfiguration latency the speculative
// prefetcher hides. Three gates:
//
//   - CONTRACT (deterministic, never retried): the full policy × prefetch
//     grid aggregates bit-identically at jobs=1 and jobs=8 — thread count
//     must never leak into a single summary bit.
//   - REGRET (perf-style, up to three attempts with a cool-down): the
//     offline-planned MDP policy's regret — its QoS-unavailable fraction
//     minus the best policy's — must not exceed AuRA's regret by more than
//     `regret_margin_max` from the baseline file. The tabular plan has the
//     whole transition model at its disposal; trailing the online learner
//     would mean the offline solve is mis-modelled.
//   - STALL (perf-style, same retry loop): prefetching on the MDP cell must
//     hide at least `stall_reduction_min` of the stalled reconfiguration
//     time (1 - stall_on/stall_off; the predictable AR(1) drift makes the
//     one-step prediction frequently right).
//
// Emits machine-readable BENCH_policy.json to $CLR_REPORT_DIR (or the
// working directory).
//
// Usage: policy_regret [--check-baseline <path>] [tasks] [seed]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dse/mapping_problem.hpp"
#include "io/json.hpp"

namespace {

using namespace clr;

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("policy_regret: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool summary_identical(const util::Summary& a, const util::Summary& b) {
  return a.count == b.count && a.mean == b.mean && a.stddev == b.stddev && a.ci95 == b.ci95 &&
         a.min == b.min && a.max == b.max;
}

/// Bit-exact comparison of every replicated axis (the determinism contract).
bool stats_identical(const exp::ReplicatedStats& a, const exp::ReplicatedStats& b) {
  return a.replications == b.replications && summary_identical(a.num_events, b.num_events) &&
         summary_identical(a.num_reconfigs, b.num_reconfigs) &&
         summary_identical(a.num_infeasible_events, b.num_infeasible_events) &&
         summary_identical(a.avg_energy, b.avg_energy) &&
         summary_identical(a.total_reconfig_cost, b.total_reconfig_cost) &&
         summary_identical(a.avg_reconfig_cost, b.avg_reconfig_cost) &&
         summary_identical(a.max_drc, b.max_drc) &&
         summary_identical(a.qos_violation_time, b.qos_violation_time) &&
         summary_identical(a.downtime, b.downtime) &&
         summary_identical(a.availability, b.availability) &&
         summary_identical(a.reconfig_stall_time, b.reconfig_stall_time) &&
         summary_identical(a.prefetch_hidden_time, b.prefetch_hidden_time) &&
         summary_identical(a.prefetch_hits, b.prefetch_hits) &&
         summary_identical(a.prefetch_misses, b.prefetch_misses) &&
         summary_identical(a.service_availability, b.service_availability);
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  const std::size_t tasks = positional.size() > 0
                                ? static_cast<std::size_t>(std::atol(positional[0].c_str()))
                                : (bench::smoke() ? 8 : 12);
  const auto seed = positional.size() > 1
                        ? static_cast<std::uint64_t>(std::atoll(positional[1].c_str()))
                        : 0x9E67ULL;
  const std::size_t num_points = bench::smoke() ? 12 : 16;

  // Workloads: sampled databases (the policies read the database and its
  // DrcMatrix, never how the points were found — same trick as
  // bench/fleet_throughput), under a strongly drifting QoS requirement.
  struct Workload {
    std::unique_ptr<exp::AppInstance> app;
    dse::DesignDb db;
    rt::DrcMatrix drc{0, {}};
    dse::MetricRanges ranges;
    dse::MetricRanges raw;
  };
  const auto build_workload = [&](std::size_t n_tasks, std::size_t n_points,
                                  std::uint64_t wl_seed) {
    Workload w;
    w.app = exp::make_synthetic_app(n_tasks, wl_seed);
    const dse::QosSpec loose{1e18, 0.0};
    dse::MappingProblem problem(w.app->context(), loose, dse::ObjectiveMode::EnergyQos);
    util::Rng rng(wl_seed ^ 0xBEEFULL);
    w.db.reserve(n_points);
    while (w.db.size() < n_points) {
      const auto cfg = problem.decode(problem.random_genes(rng));
      const auto res = problem.evaluate_schedule(cfg);
      dse::DesignPoint p;
      p.config = cfg;
      p.energy = res.energy;
      p.makespan = res.makespan;
      p.func_rel = res.func_rel;
      w.db.add(std::move(p));
    }
    recfg::ReconfigModel reconfig(w.app->platform(), w.app->impls());
    w.drc = rt::DrcMatrix(w.db, reconfig);
    w.raw = w.db.ranges();
    w.ranges = w.raw;
    w.ranges.makespan_max = w.raw.makespan_max + 0.25 * (w.raw.makespan_max - w.raw.makespan_min);
    w.ranges.func_rel_min = w.raw.func_rel_min - 0.25 * (w.raw.func_rel_max - w.raw.func_rel_min);
    return w;
  };
  const Workload regret_wl = build_workload(tasks, num_points, seed);
  // The drift regime measures the prefetcher's hidden-time mechanics; a fixed
  // small workload keeps it scale-independent (at paper scale the big grid's
  // database drifts into a stay-put regime where nothing is ever staged).
  const Workload drift_wl = build_workload(8, 12, 0x9E67ULL);
  const auto& app = regret_wl.app;
  const auto& db = regret_wl.db;
  const auto& drc = regret_wl.drc;
  const auto& ranges = regret_wl.ranges;
  const auto& r = regret_wl.raw;

  // Regime A (regret + determinism contract): fast, noisy requirement churn —
  // the paper's event cadence, where frequent re-decisions separate the
  // policies' planning quality.
  exp::RuntimeEvalParams base;
  base.p_rc = 0.4;
  base.sim.total_cycles = bench::sim_cycles();
  base.qos.ar1_phi = 0.9;  // drifting requirement: the regime the MDP kernel models
  base.faults.transient_rate = 2e-5;
  base.faults.validate();
  base.fault_profiles = flt::profiles_from_platform(app->platform());
  base.mdp.makespan_bins = 5;
  base.mdp.func_rel_bins = 5;

  const std::vector<exp::PolicyKind> kinds{exp::PolicyKind::Baseline, exp::PolicyKind::Ura,
                                           exp::PolicyKind::Aura, exp::PolicyKind::Mdp};
  const auto kind_name = [](exp::PolicyKind kind) {
    switch (kind) {
      case exp::PolicyKind::Baseline: return "baseline";
      case exp::PolicyKind::Ura: return "ura";
      case exp::PolicyKind::Aura: return "aura";
      case exp::PolicyKind::Mdp: return "mdp";
    }
    return "?";
  };

  const auto run_grid = [&](std::size_t jobs) {
    exp::RunnerConfig config;
    config.replications = bench::replications();
    config.jobs = jobs;
    exp::Runner runner(config);
    for (const exp::PolicyKind kind : kinds) {
      for (const bool prefetch : {false, true}) {
        exp::RunnerCell cell;
        cell.db = &db;
        cell.drc = &drc;
        cell.ranges = ranges;
        cell.params = base;
        cell.params.kind = kind;
        cell.params.prefetch = prefetch;
        cell.seed = seed ^ 0x5157ULL;
        cell.label = std::string(kind_name(kind)) + (prefetch ? "+prefetch" : "");
        runner.add_cell(std::move(cell));
      }
    }
    return runner.run();
  };

  // Regime B (stall gate): slow, predictable drift with sparse events — small
  // innovations make the one-step AR(1) prediction frequently right, and the
  // long event gap gives staged loads real time on the single-ported ICAP.
  // The prefetcher only earns hidden time between events, so gap and horizon
  // set the ceiling on what this gate can observe at all.
  exp::RuntimeEvalParams drift = base;
  drift.sim.total_cycles = std::max(bench::sim_cycles(), 1e5);
  drift.qos.ar1_phi = 0.95;
  drift.qos.makespan_sd_frac = 0.05;
  drift.qos.func_rel_sd_frac = 0.05;
  drift.qos.mean_event_gap = 500.0;
  const auto run_drift_pair = [&](std::size_t jobs) {
    exp::RunnerConfig config;
    config.replications = bench::replications();
    config.jobs = jobs;
    exp::Runner runner(config);
    for (const bool prefetch : {false, true}) {
      exp::RunnerCell cell;
      cell.db = &drift_wl.db;
      cell.drc = &drift_wl.drc;
      cell.ranges = drift_wl.ranges;
      cell.params = drift;
      cell.params.kind = exp::PolicyKind::Mdp;
      cell.params.prefetch = prefetch;
      cell.seed = seed ^ 0xD21F7ULL;
      cell.label = std::string("drift mdp") + (prefetch ? "+prefetch" : "");
      runner.add_cell(std::move(cell));
    }
    return runner.run();
  };

  // --- Contract gate (deterministic, never retried): thread count must not
  // move a single bit of any replicated summary, in either regime.
  const std::vector<exp::CellResult> grid = run_grid(1);
  const std::vector<exp::CellResult> grid_j8 = run_grid(8);
  const std::vector<exp::CellResult> pair = run_drift_pair(1);
  const std::vector<exp::CellResult> pair_j8 = run_drift_pair(8);
  bool bit_identical = grid.size() == grid_j8.size() && pair.size() == pair_j8.size();
  for (std::size_t i = 0; bit_identical && i < grid.size(); ++i) {
    bit_identical = grid[i].label == grid_j8[i].label &&
                    stats_identical(grid[i].stats, grid_j8[i].stats);
  }
  for (std::size_t i = 0; bit_identical && i < pair.size(); ++i) {
    bit_identical = pair[i].label == pair_j8[i].label &&
                    stats_identical(pair[i].stats, pair_j8[i].stats);
  }

  // --- Regret: QoS-unavailable fraction (violation + downtime + stalled
  // reconfiguration time over the horizon) of the prefetch-off cells, minus
  // the best policy of the round.
  const auto cell_of = [&](exp::PolicyKind kind, bool prefetch) -> const exp::CellResult& {
    const std::string label = std::string(kind_name(kind)) + (prefetch ? "+prefetch" : "");
    for (const auto& cell : grid) {
      if (cell.label == label) return cell;
    }
    std::abort();
  };
  // The score mirrors the weighted objective every policy is asked to
  // optimize (p_rc trades energy against reconfiguration cost, violations
  // dominate): violation fraction + p_rc·normalized energy +
  // (1-p_rc)·normalized per-event reconfiguration cost.
  const double drc_hi = std::max(drc.max_drc(), 1e-12);
  const auto cost_of = [&](const exp::CellResult& cell) {
    const double violation_frac = cell.stats.qos_violation_time.mean / base.sim.total_cycles;
    const double energy_n =
        util::min_max_norm(cell.stats.avg_energy.mean, r.energy_min, r.energy_max);
    const double reconfig_n = cell.stats.avg_reconfig_cost.mean / drc_hi;
    return violation_frac + base.p_rc * energy_n + (1.0 - base.p_rc) * reconfig_n;
  };

  double regret_margin_max = 0.002;
  double stall_reduction_min = 0.10;
  if (!baseline_path.empty()) {
    const io::Json baseline = io::Json::parse(read_text_file(baseline_path));
    if (const io::Json* f = baseline.find("regret_margin_max")) regret_margin_max = f->as_number();
    if (const io::Json* f = baseline.find("stall_reduction_min"))
      stall_reduction_min = f->as_number();
  }

  std::vector<double> costs;
  double best_cost = 0.0, mdp_regret = 0.0, aura_regret = 0.0, stall_reduction = 0.0;
  double stall_off = 0.0, stall_on = 0.0;
  const auto evaluate_gates = [&] {
    costs.clear();
    for (const exp::PolicyKind kind : kinds) costs.push_back(cost_of(cell_of(kind, false)));
    best_cost = *std::min_element(costs.begin(), costs.end());
    mdp_regret = cost_of(cell_of(exp::PolicyKind::Mdp, false)) - best_cost;
    aura_regret = cost_of(cell_of(exp::PolicyKind::Aura, false)) - best_cost;
    stall_off = pair[0].stats.reconfig_stall_time.mean;
    stall_on = pair[1].stats.reconfig_stall_time.mean;
    stall_reduction = stall_off > 0.0 ? 1.0 - stall_on / stall_off : 0.0;
  };
  evaluate_gates();
  // The measurements are deterministic, but the retry protocol matches the
  // other perf gates (bench/schedule_kernel, bench/fleet_throughput): CI
  // re-measures perf-style gates up to three times with a cool-down, and
  // never retries the determinism contract.
  for (int attempt = 1; attempt < 3 && !baseline_path.empty(); ++attempt) {
    if (mdp_regret <= aura_regret + regret_margin_max && stall_reduction >= stall_reduction_min)
      break;
    std::printf("note: perf gate missed (attempt %d/3), re-measuring after cool-down\n", attempt);
    std::this_thread::sleep_for(std::chrono::seconds(3));
    evaluate_gates();
  }

  std::printf("policy regret: %zu tasks, %zu points, %.0f cycles, %zu replications, "
              "ar1_phi %.2f\n",
              tasks, db.size(), base.sim.total_cycles, grid.front().stats.replications,
              base.qos.ar1_phi);
  io::JsonObject policies;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const auto& cell = cell_of(kinds[i], false);
    std::printf("  %-8s weighted objective %.6f (regret %+.6f), violation %.1f, "
                "stall %.1f\n",
                kind_name(kinds[i]), costs[i], costs[i] - best_cost,
                cell.stats.qos_violation_time.mean, cell.stats.reconfig_stall_time.mean);
    policies.emplace_back(kind_name(kinds[i]),
                          io::Json(io::JsonObject{
                              {"weighted_objective", io::Json(costs[i])},
                              {"regret", io::Json(costs[i] - best_cost)},
                              {"violation_time", io::Json(cell.stats.qos_violation_time.mean)},
                              {"stall_time", io::Json(cell.stats.reconfig_stall_time.mean)},
                          }));
  }
  const auto& mdp_pf = pair[1].stats;
  std::printf("  drift regime, prefetch on mdp: stall %.1f -> %.1f (reduction %.3f), "
              "hidden %.1f, hits %.1f, misses %.1f\n",
              stall_off, stall_on, stall_reduction, mdp_pf.prefetch_hidden_time.mean,
              mdp_pf.prefetch_hits.mean, mdp_pf.prefetch_misses.mean);
  std::printf("  bit-identical grid at jobs 1 vs 8: %s\n", bit_identical ? "yes" : "NO (BUG)");

  io::Json report(io::JsonObject{
      {"workload", io::Json(io::JsonObject{
                       {"tasks", io::Json(static_cast<double>(tasks))},
                       {"seed", io::Json(static_cast<double>(seed))},
                       {"num_points", io::Json(static_cast<double>(db.size()))},
                       {"cycles", io::Json(base.sim.total_cycles)},
                       {"replications",
                        io::Json(static_cast<double>(grid.front().stats.replications))},
                       {"ar1_phi", io::Json(base.qos.ar1_phi)},
                       {"smoke", io::Json(bench::smoke())}})},
      {"policies", io::Json(std::move(policies))},
      {"mdp_regret", io::Json(mdp_regret)},
      {"aura_regret", io::Json(aura_regret)},
      {"stall_reduction", io::Json(stall_reduction)},
      {"prefetch_hidden_time", io::Json(mdp_pf.prefetch_hidden_time.mean)},
      {"bit_identical", io::Json(bit_identical)},
  });
  const char* report_dir = std::getenv("CLR_REPORT_DIR");
  const std::string out_path =
      (report_dir != nullptr && report_dir[0] != '\0' ? std::string(report_dir) + "/"
                                                      : std::string()) +
      "BENCH_policy.json";
  util::write_file(out_path, report.dump(2) + "\n");
  std::printf("[report] %s\n", out_path.c_str());

  bool ok = bit_identical;
  if (!bit_identical) {
    std::printf("FAIL: policy grid aggregates diverge across job counts\n");
  }
  if (!baseline_path.empty()) {
    std::printf("baseline check: mdp regret %.6f vs aura %.6f + %.6f margin, "
                "stall reduction %.3f vs %.3f min\n",
                mdp_regret, aura_regret, regret_margin_max, stall_reduction, stall_reduction_min);
    if (mdp_regret > aura_regret + regret_margin_max) {
      std::printf("FAIL: MDP regret %.6f above AuRA regret %.6f + margin %.6f\n", mdp_regret,
                  aura_regret, regret_margin_max);
      ok = false;
    }
    if (stall_reduction < stall_reduction_min) {
      std::printf("FAIL: prefetch stall reduction %.3f below the %.3f floor\n", stall_reduction,
                  stall_reduction_min);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
