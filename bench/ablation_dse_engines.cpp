// Ablation: the Eq. (5) hypervolume-fitness GA vs NSGA-II as the design-time
// system-level MOEA, at an equal evaluation budget, plus the effect of the
// paper's GA operator probabilities (pc = 0.7, pm = 0.03) vs alternatives.
//
// Metric: 3-D hypervolume (energy, makespan, -reliability) of the feasible
// non-dominated archive w.r.t. the QoS/energy reference corner, normalized by
// the sampled objective ranges.

#include "bench_common.hpp"
#include "common/table.hpp"
#include "moea/hypervolume.hpp"

namespace {

using namespace clr;

double archive_hypervolume(const moea::ParetoArchive& archive, const std::vector<double>& ref,
                           const std::vector<double>& lo) {
  if (archive.empty()) return 0.0;
  std::vector<std::vector<double>> pts;
  for (const auto& ind : archive.members()) {
    std::vector<double> p(ref.size());
    for (std::size_t k = 0; k < ref.size(); ++k) {
      p[k] = (ind.eval.objectives[k] - lo[k]) / std::max(ref[k] - lo[k], 1e-12);
    }
    pts.push_back(std::move(p));
  }
  return moea::hypervolume(pts, std::vector<double>(ref.size(), 1.0));
}

}  // namespace

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf("Ablation: design-time MOEA engine and operator settings\n\n");

  util::TextTable table("archive quality at equal budget (normalized 3-D hypervolume)");
  table.set_header({"tasks", "HvGa (Eq.5)", "NSGA-II", "HvGa pc=0.9/pm=0.1", "HvGa pc=0.5/pm=0.01"});

  for (std::size_t n : {15ul, 30ul, 60ul}) {
    const auto app = exp::make_synthetic_app(n, exp::derive_seed(0xAB5E, n));
    util::Rng spec_rng(exp::derive_seed(0xAB5E ^ 1u, n));
    const auto spec =
        exp::derive_spec(app->context(), dse::ObjectiveMode::EnergyQos, 64, 0.85, 0.10, spec_rng);
    dse::MappingProblem problem(app->context(), spec, dse::ObjectiveMode::EnergyQos);

    // Objective box for normalization + reference corner.
    std::vector<double> lo(3, 1e300), hi(3, -1e300);
    for (int s = 0; s < 96; ++s) {
      const auto eval = problem.evaluate(problem.random_genes(spec_rng));
      for (int k = 0; k < 3; ++k) {
        lo[k] = std::min(lo[k], eval.objectives[k]);
        hi[k] = std::max(hi[k], eval.objectives[k]);
      }
    }
    const std::vector<double> ref{hi[0], spec.max_makespan, -spec.min_func_rel};
    std::vector<double> scale(3);
    for (int k = 0; k < 3; ++k) scale[k] = 1.0 / std::max(hi[k] - lo[k], 1e-12);

    moea::GaParams paper_params;  // pc = 0.7, pm = 0.03, tournament 5
    paper_params.population = 64;
    paper_params.generations = 60;

    auto run_hvga = [&](moea::GaParams params) {
      util::Rng rng(exp::derive_seed(0xAB5E ^ 2u, n));
      return moea::HvGa(params, ref, scale).run(problem, rng).archive;
    };
    auto run_nsga = [&]() {
      util::Rng rng(exp::derive_seed(0xAB5E ^ 2u, n));
      return moea::Nsga2(paper_params).run(problem, rng).archive;
    };

    moea::GaParams aggressive = paper_params;
    aggressive.crossover_prob = 0.9;
    aggressive.mutation_prob = 0.10;
    moea::GaParams timid = paper_params;
    timid.crossover_prob = 0.5;
    timid.mutation_prob = 0.01;

    table.add_row({std::to_string(n),
                   util::TextTable::fmt(archive_hypervolume(run_hvga(paper_params), ref, lo), 3),
                   util::TextTable::fmt(archive_hypervolume(run_nsga(), ref, lo), 3),
                   util::TextTable::fmt(archive_hypervolume(run_hvga(aggressive), ref, lo), 3),
                   util::TextTable::fmt(archive_hypervolume(run_hvga(timid), ref, lo), 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: both engines find comparable fronts; the paper's operator\n"
              "settings (pc=0.7, pm=0.03) are competitive with the alternatives.\n");
  return 0;
}
