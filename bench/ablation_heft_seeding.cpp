// Ablation: does HEFT seeding of the system-level GA pay off?
// Compares the design-time front (normalized 3-D hypervolume and best
// makespan) with and without the constructive seed, at small GA budgets
// where convergence speed matters most.

#include "bench_common.hpp"
#include "common/table.hpp"
#include "moea/hypervolume.hpp"
#include "schedule/heft.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf("Ablation: HEFT seeding of the design-time GA\n\n");

  util::TextTable table("front quality with/without the HEFT seed");
  table.set_header({"tasks", "generations", "HV seeded", "HV unseeded", "best Sapp seeded",
                    "best Sapp unseeded", "HEFT Sapp"});

  for (std::size_t n : {20ul, 50ul, 80ul}) {
    const auto app = exp::make_synthetic_app(n, exp::derive_seed(0xAB8F, n));
    util::Rng spec_rng(exp::derive_seed(0xAB8F ^ 1u, n));
    const auto spec =
        exp::derive_spec(app->context(), dse::ObjectiveMode::EnergyQos, 64, 0.85, 0.10, spec_rng);
    dse::MappingProblem problem(app->context(), spec, dse::ObjectiveMode::EnergyQos);
    recfg::ReconfigModel reconfig(app->platform(), app->impls());

    const double heft_makespan =
        sched::ListScheduler{}.run(app->context(), sched::heft_seed(app->context())).makespan;

    for (std::size_t gens : {15ul, 60ul}) {
      dse::DseConfig cfg;
      cfg.base_ga.population = 48;
      cfg.base_ga.generations = gens;
      auto run_variant = [&](bool seeded) {
        dse::DseConfig variant = cfg;
        variant.heft_seeding = seeded;
        dse::DesignTimeDse flow(problem, reconfig, variant);
        util::Rng rng(exp::derive_seed(0xAB8F ^ 2u, n));
        return flow.run_base(rng);
      };
      const auto with_seed = run_variant(true);
      const auto without_seed = run_variant(false);

      // Shared normalization across the two fronts.
      auto collect = [](const dse::DesignDb& db) {
        std::vector<std::vector<double>> pts;
        for (const auto& p : db.points()) pts.push_back({p.energy, p.makespan, -p.func_rel});
        return pts;
      };
      auto pts_a = collect(with_seed);
      auto pts_b = collect(without_seed);
      std::vector<double> lo(3, 1e300), hi(3, -1e300);
      for (const auto* pts : {&pts_a, &pts_b}) {
        for (const auto& p : *pts) {
          for (int k = 0; k < 3; ++k) {
            lo[k] = std::min(lo[k], p[k]);
            hi[k] = std::max(hi[k], p[k]);
          }
        }
      }
      auto norm_hv = [&](std::vector<std::vector<double>> pts) {
        for (auto& p : pts) {
          for (int k = 0; k < 3; ++k) p[k] = (p[k] - lo[k]) / std::max(hi[k] - lo[k], 1e-12);
        }
        return moea::hypervolume(pts, {1.05, 1.05, 1.05});
      };
      auto best_makespan = [](const dse::DesignDb& db) {
        double best = 1e300;
        for (const auto& p : db.points()) best = std::min(best, p.makespan);
        return best;
      };
      table.add_row({std::to_string(n), std::to_string(gens),
                     util::TextTable::fmt(norm_hv(std::move(pts_a)), 3),
                     util::TextTable::fmt(norm_hv(std::move(pts_b)), 3),
                     util::TextTable::fmt(best_makespan(with_seed), 1),
                     util::TextTable::fmt(best_makespan(without_seed), 1),
                     util::TextTable::fmt(heft_makespan, 1)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: the seeded GA reaches tighter makespans (at or below the raw\n"
              "HEFT point, which carries no reliability) especially at small budgets.\n");
  return 0;
}
