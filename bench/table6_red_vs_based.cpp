// Table 6 reproduction: percentage improvements using the ReD database over
// BaseD at the relevant pRC extremes:
//   row 1 — % reduction in average reconfiguration cost at pRC = 0,
//   row 2 — % reduction in average energy consumption at pRC = 1.
//
// Paper reference values:
//   cost (pRC=0):   19.6 26.0 4.6 0.2 0.2 0.1 4.0 9.0 7.3 1.7
//   energy (pRC=1): 36.8 27.5 0.0 0.0 0.8 0.0 3.9 3.5 0.0 0.0
// Expected shape: non-negative improvements, a few large entries, several
// near-zero ones (extras do not always help). Percentages are computed per
// replication (paired on the replication seed) and reported mean ± 95% CI
// over the exp::Runner's Monte-Carlo replications.

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf("Table 6: %% improvements using ReD compared to BaseD at the relevant pRC\n\n");

  // Four cells per app (BaseD/ReD × pRC 0/1); the Runner caches one cost
  // matrix per (app, database), so each database's matrix is built once even
  // though two pRC cells use it.
  std::vector<bench::PreparedApp> apps;
  exp::Runner runner(bench::runner_config());
  const auto& sizes = bench::paper_task_counts();
  apps.reserve(sizes.size());
  for (std::size_t n : sizes) {
    apps.push_back(bench::prepare_app(n, /*tag=*/0x7ab1e6));
    const auto& prepared = apps.back();
    const std::uint64_t seed = exp::derive_seed(0x7ab1e6u ^ 0xffu, n);
    const std::string tag = "n=" + std::to_string(n) + " ";
    runner.add_cell(bench::make_cell(prepared, prepared.flow.based, exp::PolicyKind::Ura, 0.0,
                                     seed, tag + "BaseD pRC=0"));
    runner.add_cell(bench::make_cell(prepared, prepared.flow.red, exp::PolicyKind::Ura, 0.0,
                                     seed, tag + "ReD pRC=0"));
    runner.add_cell(bench::make_cell(prepared, prepared.flow.based, exp::PolicyKind::Ura, 1.0,
                                     seed, tag + "BaseD pRC=1"));
    runner.add_cell(bench::make_cell(prepared, prepared.flow.red, exp::PolicyKind::Ura, 1.0,
                                     seed, tag + "ReD pRC=1"));
  }
  const auto results = runner.run();

  util::TextTable table;
  std::vector<std::string> header{"Number of Tasks"};
  std::vector<std::string> row_cost{"% Reduction in Avg Reconfiguration cost (pRC=0)"};
  std::vector<std::string> row_energy{"% Reduction in Avg Energy Consumption (pRC=1)"};
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const exp::CellResult& based_cost = results[4 * i];
    const exp::CellResult& red_cost = results[4 * i + 1];
    const exp::CellResult& based_energy = results[4 * i + 2];
    const exp::CellResult& red_energy = results[4 * i + 3];
    const auto cost = bench::paired_summary(
        based_cost, red_cost, [](const rt::RuntimeStats& b, const rt::RuntimeStats& r) {
          return bench::pct_reduction(b.avg_reconfig_cost, r.avg_reconfig_cost);
        });
    const auto energy = bench::paired_summary(
        based_energy, red_energy, [](const rt::RuntimeStats& b, const rt::RuntimeStats& r) {
          return bench::pct_reduction(b.avg_energy, r.avg_energy);
        });
    header.push_back(std::to_string(sizes[i]));
    row_cost.push_back(bench::fmt_ci(cost, 1));
    row_energy.push_back(bench::fmt_ci(energy, 1));
    std::printf(
        "  [n=%3zu] pRC=0 dRC: BaseD %.3f / ReD %.3f | pRC=1 J: BaseD %.2f / ReD %.2f\n",
        sizes[i], based_cost.stats.avg_reconfig_cost.mean, red_cost.stats.avg_reconfig_cost.mean,
        based_energy.stats.avg_energy.mean, red_energy.stats.avg_energy.mean);
  }

  table.set_header(header);
  table.add_row(row_cost);
  table.add_row(row_energy);
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\npaper (Table 6): cost 19.6 26.0 4.6 0.2 0.2 0.1 4.0 9.0 7.3 1.7; "
      "energy 36.8 27.5 0.0 0.0 0.8 0.0 3.9 3.5 0.0 0.0\n");
  bench::write_report("table6_red_vs_based",
                      exp::grid_report("table6_red_vs_based", runner.config(), results,
                                       &runner.metrics()));
  return 0;
}
