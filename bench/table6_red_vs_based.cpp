// Table 6 reproduction: percentage improvements using the ReD database over
// BaseD at the relevant pRC extremes:
//   row 1 — % reduction in average reconfiguration cost at pRC = 0,
//   row 2 — % reduction in average energy consumption at pRC = 1.
//
// Paper reference values:
//   cost (pRC=0):   19.6 26.0 4.6 0.2 0.2 0.1 4.0 9.0 7.3 1.7
//   energy (pRC=1): 36.8 27.5 0.0 0.0 0.8 0.0 3.9 3.5 0.0 0.0
// Expected shape: non-negative improvements, a few large entries, several
// near-zero ones (extras do not always help).

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf("Table 6: %% improvements using ReD compared to BaseD at the relevant pRC\n\n");

  util::TextTable table;
  std::vector<std::string> header{"Number of Tasks"};
  std::vector<std::string> row_cost{"% Reduction in Avg Reconfiguration cost (pRC=0)"};
  std::vector<std::string> row_energy{"% Reduction in Avg Energy Consumption (pRC=1)"};

  for (std::size_t n : bench::paper_task_counts()) {
    const auto prepared = bench::prepare_app(n, /*tag=*/0x7ab1e6);
    const std::uint64_t seed = exp::derive_seed(0x7ab1e6u ^ 0xffu, n);

    const auto based_cost =
        bench::run_policy_avg(prepared, prepared.flow.based, exp::PolicyKind::Ura, 0.0, seed);
    const auto red_cost =
        bench::run_policy_avg(prepared, prepared.flow.red, exp::PolicyKind::Ura, 0.0, seed);
    const auto based_energy =
        bench::run_policy_avg(prepared, prepared.flow.based, exp::PolicyKind::Ura, 1.0, seed);
    const auto red_energy =
        bench::run_policy_avg(prepared, prepared.flow.red, exp::PolicyKind::Ura, 1.0, seed);

    header.push_back(std::to_string(n));
    row_cost.push_back(util::TextTable::fmt(
        bench::pct_reduction(based_cost.avg_reconfig_cost, red_cost.avg_reconfig_cost), 1));
    row_energy.push_back(util::TextTable::fmt(
        bench::pct_reduction(based_energy.avg_energy, red_energy.avg_energy), 1));
    std::printf(
        "  [n=%3zu] pRC=0 dRC: BaseD %.3f / ReD %.3f | pRC=1 J: BaseD %.2f / ReD %.2f\n", n,
        based_cost.avg_reconfig_cost, red_cost.avg_reconfig_cost, based_energy.avg_energy,
        red_energy.avg_energy);
  }

  table.set_header(header);
  table.add_row(row_cost);
  table.add_row(row_energy);
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\npaper (Table 6): cost 19.6 26.0 4.6 0.2 0.2 0.1 4.0 9.0 7.3 1.7; "
      "energy 36.8 27.5 0.0 0.0 0.8 0.0 3.9 3.5 0.0 0.0\n");
  return 0;
}
