// Ablation: shared-bus vs 2-D-mesh on-chip interconnect. On a mesh,
// cross-PE communication and task migration pay per hop, so the design-time
// optimizer clusters communicating tasks and the run-time manager faces a
// distance-structured dRC landscape (the paper's §3.5 motivates dRC partly
// through interconnect load).

#include "bench_common.hpp"
#include "common/table.hpp"
#include "taskgraph/generator.hpp"

namespace {

using namespace clr;

std::unique_ptr<exp::AppInstance> make_app(plat::Topology topology, std::size_t tasks,
                                           std::uint64_t seed) {
  util::SplitMix64 mix(seed);
  const std::uint64_t graph_seed = mix.next();
  const std::uint64_t impl_seed = mix.next();
  tg::GeneratorParams gp;
  gp.num_tasks = tasks;
  util::Rng graph_rng(graph_seed);
  tg::TaskGraph graph = tg::TgffGenerator(gp).generate(graph_rng);

  plat::Platform hw = plat::make_default_hmpsoc();
  auto ic = hw.interconnect();
  ic.topology = topology;
  ic.mesh_columns = 4;  // 8 PEs -> 4 x 2 grid
  hw.set_interconnect(ic);
  return std::make_unique<exp::AppInstance>(std::move(graph), std::move(hw),
                                            rel::ClrGranularity::Full, rel::FaultModel{},
                                            rel::ImplGenParams{}, impl_seed);
}

}  // namespace

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf("Ablation: bus vs 2-D mesh interconnect (4x2 grid over the 8 PEs)\n\n");

  util::TextTable table("design-time and run-time effects of the topology");
  table.set_header({"tasks", "topology", "best Sapp", "best Japp", "mean pairwise dRC",
                    "runtime avg dRC (pRC=0.5)"});

  for (std::size_t tasks : {20ul, 40ul}) {
    for (plat::Topology topology : {plat::Topology::Bus, plat::Topology::Mesh2D}) {
      const auto app = make_app(topology, tasks, exp::derive_seed(0xAB0C, tasks));
      exp::FlowParams params;
      params.dse = bench::bench_dse_config(tasks);
      util::Rng rng(exp::derive_seed(0xAB0C ^ 1u, tasks));
      const auto flow = exp::run_design_flow(*app, params, rng);

      recfg::ReconfigModel reconfig(app->platform(), app->impls());
      rt::DrcMatrix drc(flow.red, reconfig);
      double pair_sum = 0.0;
      std::size_t pairs = 0;
      for (std::size_t i = 0; i < drc.size(); ++i) {
        for (std::size_t j = 0; j < drc.size(); ++j) {
          if (i == j) continue;
          pair_sum += drc.drc(i, j);
          ++pairs;
        }
      }

      exp::RuntimeEvalParams rt_params;
      rt_params.p_rc = 0.5;
      rt_params.sim.total_cycles = bench::sim_cycles();
      const auto stats = exp::evaluate_policy(*app, flow.red, exp::qos_ranges(flow), rt_params,
                                              exp::derive_seed(0xAB0C ^ 2u, tasks));

      double best_s = 1e300, best_j = 1e300;
      for (const auto& p : flow.red.points()) {
        best_s = std::min(best_s, p.makespan);
        best_j = std::min(best_j, p.energy);
      }
      table.add_row({std::to_string(tasks),
                     topology == plat::Topology::Bus ? "bus" : "mesh 4x2",
                     util::TextTable::fmt(best_s, 1), util::TextTable::fmt(best_j, 1),
                     util::TextTable::fmt(pairs ? pair_sum / pairs : 0.0, 1),
                     util::TextTable::fmt(stats.avg_reconfig_cost, 2)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nexpected shape: the mesh raises communication costs, so the best reachable\n"
      "makespan/energy degrade. Pairwise dRC can move either way: per-hop migration is\n"
      "dearer, but the optimizer responds by co-locating communicating tasks, which\n"
      "also shortens migration distances between stored points.\n");
  return 0;
}
