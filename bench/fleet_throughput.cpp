// Fleet pipeline throughput benchmark + CI regression gate.
//
// Measures the sharded device-simulation service (src/fleet, DESIGN.md §5.13)
// in devices/second over a sampled design database, and gates two properties:
//
//   - CONTRACT (deterministic, never retried): every per-block sum and the
//     fleet summary are bit-identical across shard/thread configurations
//     (including an oversubscribed one), and at a fixed shard count the
//     per-shard folds are bit-identical at any thread count.
//   - PERF (up to three measurement attempts with a cool-down, like
//     bench/schedule_kernel): the pipeline-at-one-worker rate must stay
//     within `overhead_ratio_max` of a bare sequential simulate_device loop
//     measured in the same process (machine-transferable, like the
//     schedule-kernel normalized ratio), and the parallel rate must clear the
//     conservative absolute `devices_per_second_floor`.
//
// Emits machine-readable BENCH_fleet.json to $CLR_REPORT_DIR (or the working
// directory).
//
// Usage: fleet_throughput [--check-baseline <path>] [devices] [tasks] [seed]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "dse/mapping_problem.hpp"
#include "fleet/fleet.hpp"
#include "io/snapshot.hpp"
#include "runtime/drc_matrix.hpp"

namespace {

using namespace clr;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("fleet_throughput: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  const std::uint64_t devices =
      positional.size() > 0 ? static_cast<std::uint64_t>(std::atoll(positional[0].c_str()))
                            : (bench::smoke() ? 8000 : 50000);
  const std::size_t tasks = positional.size() > 1
                                ? static_cast<std::size_t>(std::atol(positional[1].c_str()))
                                : (bench::smoke() ? 10 : 20);
  const auto seed = positional.size() > 2
                        ? static_cast<std::uint64_t>(std::atoll(positional[2].c_str()))
                        : 0xF1EE7ULL;
  const std::size_t num_points = bench::smoke() ? 96 : 256;

  // Workload: a database of sampled (decoded + evaluated) configurations —
  // the fleet reads the database and its DrcMatrix, never how the points were
  // found, so sampling replaces the full DSE (same trick as bench/snapshot_io).
  const auto app = exp::make_synthetic_app(tasks, seed);
  const dse::QosSpec loose{1e18, 0.0};
  dse::MappingProblem problem(app->context(), loose, dse::ObjectiveMode::EnergyQos);
  util::Rng rng(seed ^ 0xBEEFULL);
  dse::DesignDb db;
  db.reserve(num_points);
  while (db.size() < num_points) {
    const auto cfg = problem.decode(problem.random_genes(rng));
    const auto res = problem.evaluate_schedule(cfg);
    dse::DesignPoint p;
    p.config = cfg;
    p.energy = res.energy;
    p.makespan = res.makespan;
    p.func_rel = res.func_rel;
    db.add(std::move(p));
  }
  recfg::ReconfigModel reconfig(app->platform(), app->impls());
  const rt::DrcMatrix drc(db, reconfig);

  fleet::FleetConfig config;
  config.devices = devices;
  config.seed = seed ^ 0xF1EE7ULL;
  config.block_size = 512;
  config.params.sim.total_cycles = bench::smoke() ? 2000.0 : 10000.0;
  config.params.faults.transient_rate = 2e-5;
  config.params.faults.validate();
  config.params.fault_profiles = flt::profiles_from_platform(app->platform());
  const auto r = db.ranges();
  config.ranges = r;
  config.ranges.makespan_max = r.makespan_max + 0.25 * (r.makespan_max - r.makespan_min);
  config.ranges.func_rel_min = r.func_rel_min - 0.25 * (r.func_rel_max - r.func_rel_min);
  const rel::ClrSpace* space = &app->clr_space();
  const std::size_t auto_jobs = util::resolve_threads(bench::jobs());

  // --- Contract gate (deterministic, never retried): every aggregate is
  // bit-identical across shard/thread configurations, including an
  // oversubscribed one (more shards and workers than cores).
  struct Combo {
    std::size_t shards, jobs;
  };
  const std::vector<Combo> combos{
      {1, 1}, {7, 1}, {7, auto_jobs + 1}, {4 * auto_jobs + 4, 2 * auto_jobs}};
  std::vector<fleet::FleetResult> contract_runs;
  for (const Combo& c : combos) {
    fleet::FleetConfig cfg = config;
    cfg.shards = c.shards;
    cfg.jobs = c.jobs;
    contract_runs.push_back(fleet::run_fleet(db, drc, space, cfg));
  }
  bool bit_identical = true;
  for (std::size_t i = 1; i < contract_runs.size(); ++i) {
    // Every per-block sum and the global fold are bit-identical at ANY
    // shard/thread combination.
    if (contract_runs[i].progress.blocks != contract_runs[0].progress.blocks ||
        contract_runs[i].summary.totals != contract_runs[0].summary.totals) {
      bit_identical = false;
    }
  }
  // At a fixed shard count the per-shard aggregates are also bit-identical
  // at any thread count (combos 1 and 2 both run 7 shards).
  {
    const auto& a = contract_runs[1].shards;
    const auto& b = contract_runs[2].shards;
    if (a.size() != b.size()) bit_identical = false;
    for (std::size_t i = 0; bit_identical && i < a.size(); ++i) {
      if (a[i].totals != b[i].totals) bit_identical = false;
    }
  }

  // --- Sequential reference: a bare simulate_device loop (no queues, no
  // threads) over a prefix of the device range, measured in-process so the
  // overhead ratio transfers across machine speeds.
  const std::uint64_t ref_devices = std::min<std::uint64_t>(devices, 2000);
  const rt::QosProcess qos(config.ranges, config.params.qos);
  const rt::RuntimeSimulator sim(config.params.sim);
  const auto measure_sequential = [&] {
    const auto start = Clock::now();
    fleet::BlockSum sink;
    for (std::uint64_t d = 0; d < ref_devices; ++d) {
      sink.add(fleet::simulate_device(db, drc, qos, sim, config.params, space, d, config.seed));
    }
    if (sink.devices != ref_devices) std::abort();
    return static_cast<double>(ref_devices) / seconds_since(start);
  };

  const int rounds = 3;
  const auto measure = [&](std::size_t jobs) {
    std::vector<double> rates;
    for (int round = 0; round < rounds; ++round) {
      fleet::FleetConfig cfg = config;
      cfg.jobs = jobs;
      const fleet::FleetResult result = fleet::run_fleet(db, drc, space, cfg);
      rates.push_back(result.devices_per_second);
    }
    return median_of(rates);
  };

  double overhead_ratio_max = 1.6;
  double rate_floor = 300.0;
  if (!baseline_path.empty()) {
    const io::Json baseline = io::Json::parse(read_text_file(baseline_path));
    if (const io::Json* f = baseline.find("overhead_ratio_max")) overhead_ratio_max = f->as_number();
    // Floor = baseline rate minus the allowed regression (default 20%).
    if (const io::Json* f = baseline.find("devices_per_second_baseline")) {
      double max_regression = 0.2;
      if (const io::Json* m = baseline.find("max_regression")) max_regression = m->as_number();
      rate_floor = f->as_number() * (1.0 - max_regression);
    }
  }

  double sequential_rate = 0.0, pipeline_rate_j1 = 0.0, parallel_rate = 0.0, overhead_ratio = 0.0;
  const auto measure_all = [&] {
    sequential_rate = measure_sequential();
    pipeline_rate_j1 = measure(1);
    parallel_rate = measure(0);
    overhead_ratio = pipeline_rate_j1 > 0.0 ? sequential_rate / pipeline_rate_j1 : 1e18;
  };
  measure_all();
  for (int attempt = 1; attempt < 3 && !baseline_path.empty(); ++attempt) {
    if (overhead_ratio <= overhead_ratio_max && parallel_rate >= rate_floor) break;
    std::printf("note: perf gate missed (attempt %d/3), re-measuring after cool-down\n", attempt);
    std::this_thread::sleep_for(std::chrono::seconds(3));
    measure_all();
  }

  std::printf("fleet throughput: %llu devices, %zu tasks, %zu points, %.0f cycles/device, "
              "block %llu\n",
              static_cast<unsigned long long>(devices), tasks, db.size(),
              config.params.sim.total_cycles,
              static_cast<unsigned long long>(config.block_size));
  std::printf("  sequential reference: %10.0f devices/s (%llu-device bare loop)\n",
              sequential_rate, static_cast<unsigned long long>(ref_devices));
  std::printf("  pipeline, 1 worker:   %10.0f devices/s (overhead ratio %.3f)\n",
              pipeline_rate_j1, overhead_ratio);
  std::printf("  pipeline, %2zu workers: %10.0f devices/s (%.2fx vs 1 worker)\n", auto_jobs,
              parallel_rate, pipeline_rate_j1 > 0.0 ? parallel_rate / pipeline_rate_j1 : 0.0);
  std::printf("  bit-identical aggregates across %zu shard/thread configs: %s\n", combos.size(),
              bit_identical ? "yes" : "NO (BUG)");

  io::Json report(io::JsonObject{
      {"workload",
       io::Json(io::JsonObject{
           {"devices", io::Json(devices)},
           {"tasks", io::Json(static_cast<double>(tasks))},
           {"seed", io::Json(static_cast<double>(seed))},
           {"num_points", io::Json(static_cast<double>(db.size()))},
           {"cycles", io::Json(config.params.sim.total_cycles)},
           {"block_size", io::Json(config.block_size)},
           {"fault_rate", io::Json(config.params.faults.transient_rate)},
           {"smoke", io::Json(bench::smoke())}})},
      {"sequential_devices_per_second", io::Json(sequential_rate)},
      {"pipeline_1worker_devices_per_second", io::Json(pipeline_rate_j1)},
      {"devices_per_second", io::Json(parallel_rate)},
      {"jobs", io::Json(static_cast<double>(auto_jobs))},
      {"overhead_ratio", io::Json(overhead_ratio)},
      {"bit_identical", io::Json(bit_identical)},
  });
  const char* report_dir = std::getenv("CLR_REPORT_DIR");
  const std::string out_path =
      (report_dir != nullptr && report_dir[0] != '\0' ? std::string(report_dir) + "/"
                                                      : std::string()) +
      "BENCH_fleet.json";
  util::write_file(out_path, report.dump(2) + "\n");
  std::printf("[report] %s\n", out_path.c_str());

  bool ok = bit_identical;
  if (!bit_identical) {
    std::printf("FAIL: fleet aggregates diverge across shard/thread configurations\n");
  }
  if (!baseline_path.empty()) {
    std::printf("baseline check: overhead ratio %.3f vs %.3f max, %.0f devices/s vs %.0f floor\n",
                overhead_ratio, overhead_ratio_max, parallel_rate, rate_floor);
    if (overhead_ratio > overhead_ratio_max) {
      std::printf("FAIL: pipeline overhead ratio %.3f above the %.3f acceptance max\n",
                  overhead_ratio, overhead_ratio_max);
      ok = false;
    }
    if (parallel_rate < rate_floor) {
      std::printf("FAIL: fleet throughput %.0f devices/s below the %.0f floor\n", parallel_rate,
                  rate_floor);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
