// Throughput of the design-time DSE under the parallel evaluation
// subsystem: wall-clock, evals/sec (actual ListScheduler invocations) and
// schedule-cache hit rate for DesignTimeDse::run, crossing evaluation mode
// (scalar kernel vs the batched SoA kernel, DseConfig::batched_eval) with
// 1 / 2 / N threads so the two modes read side by side at every thread
// count.
//
// The front produced at every (mode, thread count) cell must be identical —
// the generate-then-evaluate contract keeps all RNG draws on the sequential
// master Rng, and the batched kernel is bit-identical to the scalar one —
// so the bench cross-checks all fronts against the first run before
// reporting speedups.
//
// Usage: bench_dse_throughput [tasks] [seed]   (defaults: 20 tasks, seed 1)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"

namespace {

using namespace clr;

struct RunReport {
  bool batched = false;
  std::size_t threads = 0;
  double seconds = 0.0;
  std::uint64_t schedule_runs = 0;  ///< actual scheduler invocations (misses)
  std::uint64_t lookups = 0;        ///< total evaluation requests
  double hit_rate = 0.0;
  dse::DesignTimeDse::Result result;
};

RunReport run_once(const exp::AppInstance& app, const dse::QosSpec& spec,
                   const dse::DseConfig& cfg, std::uint64_t seed) {
  // Fresh problem per run so the schedule cache and counters start cold.
  dse::MappingProblem problem(app.context(), spec, dse::ObjectiveMode::EnergyQos);
  recfg::ReconfigModel reconfig(app.platform(), app.impls());
  dse::DesignTimeDse flow(problem, reconfig, cfg);

  RunReport report;
  report.batched = cfg.batched_eval;
  report.threads = util::resolve_threads(cfg.threads);
  util::Rng rng(seed);
  const auto t0 = std::chrono::steady_clock::now();
  report.result = flow.run(rng);
  const auto t1 = std::chrono::steady_clock::now();
  report.seconds = std::chrono::duration<double>(t1 - t0).count();
  report.schedule_runs = problem.schedule_runs();
  const auto& cache = problem.schedule_cache();
  report.lookups = cache.hits() + cache.misses();
  report.hit_rate = cache.hit_rate();
  return report;
}

bool same_front(const dse::DesignDb& a, const dse::DesignDb& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& pa = a.point(i);
    const auto& pb = b.point(i);
    if (!(pa.config == pb.config) || pa.energy != pb.energy || pa.makespan != pb.makespan ||
        pa.func_rel != pb.func_rel || pa.extra != pb.extra) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace clr;
  const std::size_t tasks = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 20;
  const auto seed = argc > 2 ? static_cast<std::uint64_t>(std::atol(argv[2])) : 1;

  const auto app = exp::make_synthetic_app(tasks, seed);
  util::Rng spec_rng(exp::derive_seed(0x7B5Eu, tasks));
  const auto spec =
      exp::derive_spec(app->context(), dse::ObjectiveMode::EnergyQos, 64, 0.85, 0.10, spec_rng);

  dse::DseConfig cfg = bench::bench_dse_config(tasks);
  const std::size_t hw = util::resolve_threads(0);
  std::printf("DSE evaluation throughput: %zu tasks, seed %llu, hardware threads %zu\n", tasks,
              static_cast<unsigned long long>(seed), hw);
  std::printf("BaseD %zux%zu + ReD %zux%zu over %zu seeds\n\n", cfg.base_ga.population,
              cfg.base_ga.generations, cfg.red_ga.population, cfg.red_ga.generations,
              cfg.max_red_seeds);

  std::vector<std::size_t> thread_counts{1, 2};
  if (hw > 2) thread_counts.push_back(hw);

  // Scalar first, then batched, at every thread count: reports pair up as
  // reports[i] (scalar) vs reports[i + thread_counts.size()] (batched).
  std::vector<RunReport> reports;
  for (const bool batched : {false, true}) {
    for (std::size_t t : thread_counts) {
      cfg.batched_eval = batched;
      cfg.threads = t;
      reports.push_back(run_once(*app, spec, cfg, seed ^ 0xD5EULL));
    }
  }
  const RunReport& base = reports.front();  // scalar, 1 thread

  util::TextTable table("DesignTimeDse::run throughput");
  table.set_header({"mode", "threads", "wall [s]", "scheduler runs", "evals/sec",
                    "cache hit rate", "speedup vs scalar 1T"});
  for (const auto& r : reports) {
    table.add_row({r.batched ? "batched" : "scalar", std::to_string(r.threads),
                   util::TextTable::fmt(r.seconds, 3), std::to_string(r.schedule_runs),
                   util::TextTable::fmt(static_cast<double>(r.schedule_runs) / r.seconds, 0),
                   util::TextTable::fmt(100.0 * r.hit_rate, 1) + " %",
                   util::TextTable::fmt(base.seconds / r.seconds, 2) + "x"});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nbatched vs scalar at equal thread count:");
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const RunReport& s = reports[i];
    const RunReport& b = reports[i + thread_counts.size()];
    std::printf("  %zuT %.2fx", s.threads, s.seconds / b.seconds);
  }
  std::printf("\n");

  bool identical = true;
  for (const auto& r : reports) {
    identical &= same_front(base.result.based, r.result.based) &&
                 same_front(base.result.red, r.result.red);
  }
  std::printf("fronts identical across modes and thread counts: %s\n",
              identical ? "yes" : "NO (BUG)");
  std::printf("memoization: %llu of %llu evaluation requests served from cache\n",
              static_cast<unsigned long long>(base.lookups - base.schedule_runs),
              static_cast<unsigned long long>(base.lookups));

  // Machine-readable companion to BENCH_schedule.json (written when
  // CLR_REPORT_DIR is set; see EXPERIMENTS.md).
  io::JsonArray runs;
  for (const auto& r : reports) {
    runs.push_back(io::Json(io::JsonObject{
        {"mode", io::Json(std::string(r.batched ? "batched" : "scalar"))},
        {"threads", io::Json(static_cast<std::uint64_t>(r.threads))},
        {"wall_seconds", io::Json(r.seconds)},
        {"schedule_runs", io::Json(r.schedule_runs)},
        {"evals_per_sec", io::Json(static_cast<double>(r.schedule_runs) / r.seconds)},
        {"cache_hit_rate", io::Json(r.hit_rate)},
        {"speedup_vs_scalar_1t", io::Json(base.seconds / r.seconds)},
    }));
  }
  io::JsonArray pairs;
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    pairs.push_back(io::Json(io::JsonObject{
        {"threads", io::Json(static_cast<std::uint64_t>(reports[i].threads))},
        {"batched_speedup_vs_scalar",
         io::Json(reports[i].seconds / reports[i + thread_counts.size()].seconds)},
    }));
  }
  bench::write_report("BENCH_dse_throughput",
                      io::Json(io::JsonObject{
                          {"tasks", io::Json(static_cast<std::uint64_t>(tasks))},
                          {"seed", io::Json(seed)},
                          {"fronts_identical", io::Json(identical)},
                          {"runs", io::Json(std::move(runs))},
                          {"batched_vs_scalar", io::Json(std::move(pairs))},
                      }));
  return identical ? 0 : 1;
}
