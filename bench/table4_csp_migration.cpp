// Table 4 reproduction: percentage reduction in task-migration cost using ReD
// over BaseD for a constraint-satisfaction problem (CSP) w.r.t. the QoS
// metrics (R(Xi) = 0, i.e. the CspQos objective mode), applications of
// 10..100 tasks.
//
// Paper reference values: 23 34 47 37 28 49 39 27 36 56 (% reduction).
// Expected shape: consistent double-digit reductions; exact values differ
// (synthetic models, different GA seeds). Reductions are computed per
// replication (paired on the replication seed) and reported mean ± 95% CI
// over the exp::Runner's Monte-Carlo replications.

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf("Table 4: %% reduction in task-migration cost, ReD over BaseD (CSP, pRC = 0)\n\n");

  // §5.2: BaseD pairs the Pareto-only database with the [11]-style
  // hypervolume-best-on-every-event policy; ReD pairs the extended database
  // with the reconfiguration-cost-aware selection (CSP: R = 0, so pRC = 0 —
  // purely dRC-driven, adapting only on violations). One Runner spans the
  // whole grid so each database's cost matrix is built exactly once.
  std::vector<bench::PreparedApp> apps;
  exp::Runner runner(bench::runner_config());
  const auto& sizes = bench::paper_task_counts();
  apps.reserve(sizes.size());
  for (std::size_t n : sizes) {
    apps.push_back(bench::prepare_app(n, /*tag=*/0x7ab4e4, dse::ObjectiveMode::CspQos));
    const auto& prepared = apps.back();
    const std::uint64_t seed = exp::derive_seed(0x7ab4e4u ^ 0xffu, n);
    runner.add_cell(bench::make_cell(prepared, prepared.flow.based, exp::PolicyKind::Baseline,
                                     0.0, seed, "n=" + std::to_string(n) + " BaseD"));
    runner.add_cell(bench::make_cell(prepared, prepared.flow.red, exp::PolicyKind::Ura,
                                     /*p_rc=*/0.0, seed, "n=" + std::to_string(n) + " ReD"));
  }
  const auto results = runner.run();

  util::TextTable table;
  std::vector<std::string> header{"Number of Tasks"};
  std::vector<std::string> row{"% Reduction over BaseD"};
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const exp::CellResult& based = results[2 * i];
    const exp::CellResult& red = results[2 * i + 1];
    const auto reduction = bench::paired_summary(
        based, red, [](const rt::RuntimeStats& b, const rt::RuntimeStats& r) {
          return bench::pct_reduction(b.avg_reconfig_cost, r.avg_reconfig_cost);
        });
    header.push_back(std::to_string(sizes[i]));
    row.push_back(bench::fmt_ci(reduction, 1));
    std::printf(
        "  [n=%3zu] BaseD: %zu pts, avg dRC %.3f | ReD: %zu pts (%zu extra), avg dRC %.3f\n",
        sizes[i], apps[i].flow.based.size(), based.stats.avg_reconfig_cost.mean,
        apps[i].flow.red.size(), apps[i].flow.red.num_extra(),
        red.stats.avg_reconfig_cost.mean);
  }

  table.set_header(header);
  table.add_row(row);
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\npaper (Table 4): 23 34 47 37 28 49 39 27 36 56\n");
  bench::write_report("table4_csp_migration",
                      exp::grid_report("table4_csp_migration", runner.config(), results,
                                       &runner.metrics()));
  return 0;
}
