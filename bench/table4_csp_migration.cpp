// Table 4 reproduction: percentage reduction in task-migration cost using ReD
// over BaseD for a constraint-satisfaction problem (CSP) w.r.t. the QoS
// metrics (R(Xi) = 0, i.e. the CspQos objective mode), applications of
// 10..100 tasks.
//
// Paper reference values: 23 34 47 37 28 49 39 27 36 56 (% reduction).
// Expected shape: consistent double-digit reductions; exact values differ
// (synthetic models, different GA seeds).

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf("Table 4: %% reduction in task-migration cost, ReD over BaseD (CSP, pRC = 0)\n\n");

  util::TextTable table;
  std::vector<std::string> header{"Number of Tasks"};
  std::vector<std::string> row{"% Reduction over BaseD"};

  for (std::size_t n : bench::paper_task_counts()) {
    const auto prepared = bench::prepare_app(n, /*tag=*/0x7ab4e4, dse::ObjectiveMode::CspQos);
    const std::uint64_t seed = exp::derive_seed(0x7ab4e4u ^ 0xffu, n);

    // §5.2: BaseD pairs the Pareto-only database with the [11]-style
    // hypervolume-best-on-every-event policy; ReD pairs the extended
    // database with the reconfiguration-cost-aware selection (CSP: R = 0, so
    // pRC = 0 — purely dRC-driven, adapting only on violations).
    const auto based = bench::run_policy_avg(prepared, prepared.flow.based,
                                             exp::PolicyKind::Baseline, 0.0, seed);
    const auto red = bench::run_policy_avg(prepared, prepared.flow.red, exp::PolicyKind::Ura,
                                           /*p_rc=*/0.0, seed);

    header.push_back(std::to_string(n));
    row.push_back(util::TextTable::fmt(
        bench::pct_reduction(based.avg_reconfig_cost, red.avg_reconfig_cost), 1));
    std::printf("  [n=%3zu] BaseD: %zu pts, avg dRC %.3f | ReD: %zu pts (%zu extra), avg dRC %.3f\n",
                n, prepared.flow.based.size(), based.avg_reconfig_cost, prepared.flow.red.size(),
                prepared.flow.red.num_extra(), red.avg_reconfig_cost);
  }

  table.set_header(header);
  table.add_row(row);
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\npaper (Table 4): 23 34 47 37 28 49 39 27 36 56\n");
  return 0;
}
