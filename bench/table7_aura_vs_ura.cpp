// Table 7 reproduction: percentage improvements using AuRA (the RL agent
// with Monte-Carlo-pretrained value functions) compared to plain uRA, on the
// ReD database.
//
// Paper reference values (pRC = 0 cost / pRC = 1 energy):
//   cost:   -6.9 49.5 3.3 20.9 58.5 25.7 23.9 -1.2 0.6 7.2
//   energy:  1.2  7.0 -2.5 2.6  1.6 -1.0 -0.1 0.5 3.2 3.0
//
// Reproduction note (see EXPERIMENTS.md): at the pRC extremes the immediate
// objective is a single criterion and our uRA implementation is already
// optimal per event (it stays put whenever feasible and takes the cheapest /
// most frugal feasible point otherwise), so AuRA — whose default guard
// restricts the value lookahead to exact ties — matches it (rows ~0, i.e.
// the agent never degrades the user's objective; the paper reports negative
// entries where its value functions hurt). The agent's lookahead becomes
// informative at intermediate pRC, where the myopic weighted choice is no
// longer optimal; the second pair of rows reports pRC = 0.5 with a 0.05
// guard band, showing the mixed gains/losses the paper's Table 7 exhibits.

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf("Table 7: %% improvements using AuRA compared to uRA (ReD database)\n\n");

  util::TextTable table;
  std::vector<std::string> header{"Number of Tasks"};
  std::vector<std::string> row_cost{"% Reduction in Avg Reconfiguration cost (pRC=0)"};
  std::vector<std::string> row_energy{"% Reduction in Avg Energy Consumption (pRC=1)"};
  std::vector<std::string> row_cost_mid{"% Reduction in Avg Reconfiguration cost (pRC=0.5, guard 0.05)"};
  std::vector<std::string> row_energy_mid{"% Reduction in Avg Energy Consumption (pRC=0.5, guard 0.05)"};

  for (std::size_t n : bench::paper_task_counts()) {
    const auto prepared = bench::prepare_app(n, /*tag=*/0x7ab1e7);
    const std::uint64_t seed = exp::derive_seed(0x7ab1e7u ^ 0xffu, n);

    const auto ura_cost =
        bench::run_policy_avg(prepared, prepared.flow.red, exp::PolicyKind::Ura, 0.0, seed);
    const auto aura_cost =
        bench::run_policy_avg(prepared, prepared.flow.red, exp::PolicyKind::Aura, 0.0, seed);
    const auto ura_energy =
        bench::run_policy_avg(prepared, prepared.flow.red, exp::PolicyKind::Ura, 1.0, seed);
    const auto aura_energy =
        bench::run_policy_avg(prepared, prepared.flow.red, exp::PolicyKind::Aura, 1.0, seed);

    // Intermediate regime: speculative lookahead with a bounded guard band.
    auto run_mid = [&](exp::PolicyKind kind) {
      exp::RuntimeEvalParams params;
      params.kind = kind;
      params.p_rc = 0.5;
      params.aura.guard = 0.05;
      params.sim.total_cycles = bench::sim_cycles();
      rt::RuntimeStats acc;
      constexpr std::size_t kRepeats = 3;
      for (std::size_t r = 0; r < kRepeats; ++r) {
        const auto s = exp::evaluate_policy(*prepared.app, prepared.flow.red, prepared.qos_box,
                                            params, seed + 0x9e37 * (r + 1));
        acc.num_events += s.num_events;
        acc.avg_energy += s.avg_energy / kRepeats;
        acc.total_reconfig_cost += s.total_reconfig_cost;
      }
      acc.avg_reconfig_cost =
          acc.num_events ? acc.total_reconfig_cost / static_cast<double>(acc.num_events) : 0.0;
      return acc;
    };
    const auto ura_mid = run_mid(exp::PolicyKind::Ura);
    const auto aura_mid = run_mid(exp::PolicyKind::Aura);

    header.push_back(std::to_string(n));
    row_cost.push_back(util::TextTable::fmt(
        bench::pct_reduction(ura_cost.avg_reconfig_cost, aura_cost.avg_reconfig_cost), 1));
    row_energy.push_back(util::TextTable::fmt(
        bench::pct_reduction(ura_energy.avg_energy, aura_energy.avg_energy), 1));
    row_cost_mid.push_back(util::TextTable::fmt(
        bench::pct_reduction(ura_mid.avg_reconfig_cost, aura_mid.avg_reconfig_cost), 1));
    row_energy_mid.push_back(
        util::TextTable::fmt(bench::pct_reduction(ura_mid.avg_energy, aura_mid.avg_energy), 1));
    std::printf("  [n=%3zu] pRC=0 dRC: uRA %.3f / AuRA %.3f | pRC=1 J: uRA %.2f / AuRA %.2f | "
                "pRC=.5 J: %.2f / %.2f\n",
                n, ura_cost.avg_reconfig_cost, aura_cost.avg_reconfig_cost, ura_energy.avg_energy,
                aura_energy.avg_energy, ura_mid.avg_energy, aura_mid.avg_energy);
  }

  table.set_header(header);
  table.add_row(row_cost);
  table.add_row(row_energy);
  table.add_row(row_cost_mid);
  table.add_row(row_energy_mid);
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\npaper (Table 7): cost -6.9 49.5 3.3 20.9 58.5 25.7 23.9 -1.2 0.6 7.2; "
      "energy 1.2 7.0 -2.5 2.6 1.6 -1.0 -0.1 0.5 3.2 3.0\n"
      "(see EXPERIMENTS.md for the reproduction discussion of this table)\n");
  return 0;
}
