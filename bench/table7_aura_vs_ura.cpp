// Table 7 reproduction: percentage improvements using AuRA (the RL agent
// with Monte-Carlo-pretrained value functions) compared to plain uRA, on the
// ReD database.
//
// Paper reference values (pRC = 0 cost / pRC = 1 energy):
//   cost:   -6.9 49.5 3.3 20.9 58.5 25.7 23.9 -1.2 0.6 7.2
//   energy:  1.2  7.0 -2.5 2.6  1.6 -1.0 -0.1 0.5 3.2 3.0
//
// Reproduction note (see EXPERIMENTS.md): at the pRC extremes the immediate
// objective is a single criterion and our uRA implementation is already
// optimal per event (it stays put whenever feasible and takes the cheapest /
// most frugal feasible point otherwise), so AuRA — whose default guard
// restricts the value lookahead to exact ties — matches it (rows ~0, i.e.
// the agent never degrades the user's objective; the paper reports negative
// entries where its value functions hurt). The agent's lookahead becomes
// informative at intermediate pRC, where the myopic weighted choice is no
// longer optimal; the second pair of rows reports pRC = 0.5 with a 0.05
// guard band, showing the mixed gains/losses the paper's Table 7 exhibits.
// All percentages are computed per replication (paired on the replication
// seed) and reported mean ± 95% CI over the exp::Runner's replications.

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf("Table 7: %% improvements using AuRA compared to uRA (ReD database)\n\n");

  // Six cells per app (uRA/AuRA × pRC 0 / 1 / 0.5-guarded), all sharing that
  // app's single ReD cost matrix through the Runner cache.
  std::vector<bench::PreparedApp> apps;
  exp::Runner runner(bench::runner_config());
  const auto& sizes = bench::paper_task_counts();
  apps.reserve(sizes.size());
  for (std::size_t n : sizes) {
    apps.push_back(bench::prepare_app(n, /*tag=*/0x7ab1e7));
    const auto& prepared = apps.back();
    const std::uint64_t seed = exp::derive_seed(0x7ab1e7u ^ 0xffu, n);
    const std::string tag = "n=" + std::to_string(n) + " ";
    runner.add_cell(bench::make_cell(prepared, prepared.flow.red, exp::PolicyKind::Ura, 0.0,
                                     seed, tag + "uRA pRC=0"));
    runner.add_cell(bench::make_cell(prepared, prepared.flow.red, exp::PolicyKind::Aura, 0.0,
                                     seed, tag + "AuRA pRC=0"));
    runner.add_cell(bench::make_cell(prepared, prepared.flow.red, exp::PolicyKind::Ura, 1.0,
                                     seed, tag + "uRA pRC=1"));
    runner.add_cell(bench::make_cell(prepared, prepared.flow.red, exp::PolicyKind::Aura, 1.0,
                                     seed, tag + "AuRA pRC=1"));
    // Intermediate regime: speculative lookahead with a bounded guard band.
    auto mid_ura = bench::make_cell(prepared, prepared.flow.red, exp::PolicyKind::Ura, 0.5,
                                    seed, tag + "uRA pRC=0.5");
    auto mid_aura = bench::make_cell(prepared, prepared.flow.red, exp::PolicyKind::Aura, 0.5,
                                     seed, tag + "AuRA pRC=0.5 guard=0.05");
    mid_aura.params.aura.guard = 0.05;
    runner.add_cell(std::move(mid_ura));
    runner.add_cell(std::move(mid_aura));
  }
  const auto results = runner.run();

  const auto reduction_of = [](const exp::CellResult& ura, const exp::CellResult& aura,
                               double rt::RuntimeStats::*field) {
    return bench::paired_summary(
        ura, aura, [field](const rt::RuntimeStats& u, const rt::RuntimeStats& a) {
          return bench::pct_reduction(u.*field, a.*field);
        });
  };

  util::TextTable table;
  std::vector<std::string> header{"Number of Tasks"};
  std::vector<std::string> row_cost{"% Reduction in Avg Reconfiguration cost (pRC=0)"};
  std::vector<std::string> row_energy{"% Reduction in Avg Energy Consumption (pRC=1)"};
  std::vector<std::string> row_cost_mid{
      "% Reduction in Avg Reconfiguration cost (pRC=0.5, guard 0.05)"};
  std::vector<std::string> row_energy_mid{
      "% Reduction in Avg Energy Consumption (pRC=0.5, guard 0.05)"};

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto* row = &results[6 * i];
    header.push_back(std::to_string(sizes[i]));
    row_cost.push_back(
        bench::fmt_ci(reduction_of(row[0], row[1], &rt::RuntimeStats::avg_reconfig_cost), 1));
    row_energy.push_back(
        bench::fmt_ci(reduction_of(row[2], row[3], &rt::RuntimeStats::avg_energy), 1));
    row_cost_mid.push_back(
        bench::fmt_ci(reduction_of(row[4], row[5], &rt::RuntimeStats::avg_reconfig_cost), 1));
    row_energy_mid.push_back(
        bench::fmt_ci(reduction_of(row[4], row[5], &rt::RuntimeStats::avg_energy), 1));
    std::printf("  [n=%3zu] pRC=0 dRC: uRA %.3f / AuRA %.3f | pRC=1 J: uRA %.2f / AuRA %.2f | "
                "pRC=.5 J: %.2f / %.2f\n",
                sizes[i], row[0].stats.avg_reconfig_cost.mean, row[1].stats.avg_reconfig_cost.mean,
                row[2].stats.avg_energy.mean, row[3].stats.avg_energy.mean,
                row[4].stats.avg_energy.mean, row[5].stats.avg_energy.mean);
  }

  table.set_header(header);
  table.add_row(row_cost);
  table.add_row(row_energy);
  table.add_row(row_cost_mid);
  table.add_row(row_energy_mid);
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\npaper (Table 7): cost -6.9 49.5 3.3 20.9 58.5 25.7 23.9 -1.2 0.6 7.2; "
      "energy 1.2 7.0 -2.5 2.6 1.6 -1.0 -0.1 0.5 3.2 3.0\n"
      "(see EXPERIMENTS.md for the reproduction discussion of this table)\n");
  bench::write_report("table7_aura_vs_ura",
                      exp::grid_report("table7_aura_vs_ura", runner.config(), results,
                                       &runner.metrics()));
  return 0;
}
