// google-benchmark micro-kernels for the tracer's overhead model (DESIGN.md
// §5.8): the disabled path must cost one relaxed atomic load — statistically
// indistinguishable from no instrumentation at all — and the enabled path a
// few tens of nanoseconds per span (timestamp pair + slot write).
//
//   BM_UninstrumentedWork      — the workload with no tracing macro at all
//   BM_DisabledSpan            — same workload wrapped in CLR_TRACE_SPAN,
//                                tracer off (the always-on production cost)
//   BM_EnabledSpan             — tracer on, spans recorded
//   BM_EnabledSpanWithArgs     — tracer on, spans carrying typical args
//   BM_DisabledInstant/Counter — point events, tracer off
//
// Compare BM_UninstrumentedWork vs BM_DisabledSpan to verify the "near-zero
// disabled cost" claim; any gap beyond run-to-run noise is a regression.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "trace/trace.hpp"

namespace {

using namespace clr;

/// A few dozen nanoseconds of real work, so per-span overhead is measured
/// against a realistic (not empty-loop) baseline the optimizer cannot fold.
std::uint64_t work(std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

void BM_UninstrumentedWork(benchmark::State& state) {
  trace::Tracer::instance().disable();
  std::uint64_t x = 0x9e3779b9u;
  for (auto _ : state) {
    x = work(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_UninstrumentedWork);

void BM_DisabledSpan(benchmark::State& state) {
  trace::Tracer::instance().disable();
  std::uint64_t x = 0x9e3779b9u;
  for (auto _ : state) {
    CLR_TRACE_SPAN(span, trace::Category::Bench, "bench.disabled");
    x = work(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_DisabledSpan);

void BM_EnabledSpan(benchmark::State& state) {
  auto& tracer = trace::Tracer::instance();
  tracer.enable(trace::mask_of(trace::Category::Bench));
  std::uint64_t x = 0x9e3779b9u;
  for (auto _ : state) {
    CLR_TRACE_SPAN(span, trace::Category::Bench, "bench.enabled");
    x = work(x);
    benchmark::DoNotOptimize(x);
    // Bound memory: recycle the buffers between measurement batches.
    if (tracer.num_events() > (1u << 20)) {
      state.PauseTiming();
      tracer.clear();
      state.ResumeTiming();
    }
  }
  tracer.disable();
  tracer.clear();
}
BENCHMARK(BM_EnabledSpan);

void BM_EnabledSpanWithArgs(benchmark::State& state) {
  auto& tracer = trace::Tracer::instance();
  tracer.enable(trace::mask_of(trace::Category::Bench));
  std::uint64_t x = 0x9e3779b9u;
  std::size_t i = 0;
  for (auto _ : state) {
    CLR_TRACE_SPAN(span, trace::Category::Bench, "bench.enabled_args",
                   {{"i", i}, {"kind", "micro"}, {"x", 0.5}});
    x = work(x);
    ++i;
    benchmark::DoNotOptimize(x);
    if (tracer.num_events() > (1u << 20)) {
      state.PauseTiming();
      tracer.clear();
      state.ResumeTiming();
    }
  }
  tracer.disable();
  tracer.clear();
}
BENCHMARK(BM_EnabledSpanWithArgs);

void BM_DisabledInstant(benchmark::State& state) {
  trace::Tracer::instance().disable();
  std::uint64_t x = 0x9e3779b9u;
  for (auto _ : state) {
    CLR_TRACE_INSTANT(trace::Category::Bench, "bench.instant", {{"x", 1}});
    x = work(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_DisabledInstant);

void BM_DisabledCounter(benchmark::State& state) {
  trace::Tracer::instance().disable();
  std::uint64_t x = 0x9e3779b9u;
  for (auto _ : state) {
    CLR_TRACE_COUNTER(trace::Category::Bench, "bench.counter", 1.0);
    x = work(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_DisabledCounter);

/// Multi-threaded enabled recording: per-thread buffers must not contend.
void BM_EnabledSpanThreaded(benchmark::State& state) {
  auto& tracer = trace::Tracer::instance();
  if (state.thread_index() == 0) tracer.enable(trace::mask_of(trace::Category::Bench));
  std::uint64_t x = 0x9e3779b9u + static_cast<std::uint64_t>(state.thread_index());
  for (auto _ : state) {
    CLR_TRACE_SPAN(span, trace::Category::Bench, "bench.threaded");
    x = work(x);
    benchmark::DoNotOptimize(x);
  }
  if (state.thread_index() == 0) {
    tracer.disable();
    tracer.clear();
  }
}
BENCHMARK(BM_EnabledSpanThreaded)->Threads(4);

}  // namespace

BENCHMARK_MAIN();
