// Ablation: contribution of each reliability layer to the Pareto front.
//
// The cross-layer thesis (paper §2.1) is that distributing mitigation across
// layers beats any single layer. We quantify it by removing one layer at a
// time from the full CLR space and measuring what the design-time DSE can
// still achieve: the Pareto front's 2-D hypervolume in normalized
// (error-rate, energy) space, its best reachable reliability, and its best
// energy at that shared reliability level.
//
// Expected shape: the full space dominates; removing the application-software
// layer (the strongest detector/corrector menu) hurts reliability reach the
// most; removing hardware hurts the energy-at-high-reliability corner.

#include <algorithm>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "moea/hypervolume.hpp"

namespace {

using namespace clr;

rel::ClrSpace space_without(bool drop_hw, bool drop_ssw, bool drop_asw) {
  const rel::ClrSpace full(rel::ClrGranularity::Full);
  std::vector<rel::ClrConfig> keep;
  for (const auto& c : full.configs()) {
    if (drop_hw && c.hw != rel::HwTechnique::None) continue;
    if (drop_ssw && c.ssw != rel::SswTechnique::None) continue;
    if (drop_asw && c.asw != rel::AswTechnique::None) continue;
    keep.push_back(c);
  }
  return rel::ClrSpace(std::move(keep));
}

}  // namespace

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf("Ablation: per-layer contribution to the CLR design space\n\n");

  constexpr std::size_t kTasks = 24;
  constexpr std::uint64_t kTag = 0xAB1A;

  struct Variant {
    const char* name;
    rel::ClrSpace space;
  };
  std::vector<Variant> variants;
  variants.push_back({"full (HW+SSW+ASW)", rel::ClrSpace(rel::ClrGranularity::Full)});
  variants.push_back({"no HW layer", space_without(true, false, false)});
  variants.push_back({"no SSW layer", space_without(false, true, false)});
  variants.push_back({"no ASW layer", space_without(false, false, true)});
  variants.push_back({"unprotected only", space_without(true, true, true)});

  // Shared spec so all variants chase the same corner.
  dse::QosSpec spec;
  {
    const auto probe = exp::make_synthetic_app(kTasks, exp::derive_seed(kTag, kTasks));
    util::Rng rng(exp::derive_seed(kTag ^ 1u, kTasks));
    spec = exp::derive_spec(probe->context(), dse::ObjectiveMode::EnergyQos, 64, 0.90, 0.05, rng);
  }

  util::TextTable table("front quality per CLR-space variant (same app, same GA budget)");
  table.set_header({"variant", "#configs", "#front", "norm. hypervolume", "best Fapp",
                    "best Japp @ Fapp>=q50"});

  // Normalization box for the hypervolume: collected over all variants.
  struct FrontData {
    const char* name;
    std::size_t configs;
    std::vector<std::array<double, 2>> points;  // (error_rate, energy)
  };
  std::vector<FrontData> fronts;
  double err_hi = 0.0, j_hi = 0.0, err_lo = 1e300, j_lo = 1e300;

  for (const auto& v : variants) {
    const auto app =
        exp::make_synthetic_app_with_space(kTasks, exp::derive_seed(kTag, kTasks), v.space);
    dse::MappingProblem problem(app->context(), spec, dse::ObjectiveMode::EnergyQos);
    recfg::ReconfigModel reconfig(app->platform(), app->impls());
    dse::DseConfig cfg = bench::bench_dse_config(kTasks);
    cfg.max_base_points = 40;
    dse::DesignTimeDse flow(problem, reconfig, cfg);
    util::Rng rng(exp::derive_seed(kTag ^ 2u, kTasks));
    const auto db = flow.run_base(rng);

    FrontData fd{v.name, app->clr_space().size(), {}};
    for (const auto& p : db.points()) {
      fd.points.push_back({1.0 - p.func_rel, p.energy});
      err_hi = std::max(err_hi, 1.0 - p.func_rel);
      j_hi = std::max(j_hi, p.energy);
      err_lo = std::min(err_lo, 1.0 - p.func_rel);
      j_lo = std::min(j_lo, p.energy);
    }
    fronts.push_back(std::move(fd));
  }

  // Every restricted space is a subset of the full one, so points discovered
  // while exploring a restricted space are valid full-space design points —
  // fold them into the full variant (otherwise the GA's fixed budget on the
  // much larger full space understates what that space can reach).
  for (std::size_t v = 1; v < fronts.size(); ++v) {
    fronts[0].points.insert(fronts[0].points.end(), fronts[v].points.begin(),
                            fronts[v].points.end());
  }
  {
    // Pareto-filter the merged full-space set so its reported size is a front.
    std::vector<std::array<double, 2>> kept;
    for (const auto& p : fronts[0].points) {
      bool dominated = false;
      for (const auto& q : fronts[0].points) {
        if ((q[0] <= p[0] && q[1] < p[1]) || (q[0] < p[0] && q[1] <= p[1])) {
          dominated = true;
          break;
        }
      }
      if (!dominated && std::find(kept.begin(), kept.end(), p) == kept.end()) kept.push_back(p);
    }
    fronts[0].points = std::move(kept);
  }

  // Report with a shared normalization box.
  const double median_err = 0.5 * (err_lo + err_hi);
  for (const auto& fd : fronts) {
    std::vector<std::array<double, 2>> norm;
    double best_f = 0.0;
    double best_j_at_q = 1e300;
    for (const auto& p : fd.points) {
      norm.push_back({(p[0] - err_lo) / std::max(err_hi - err_lo, 1e-12),
                      (p[1] - j_lo) / std::max(j_hi - j_lo, 1e-12)});
      best_f = std::max(best_f, 1.0 - p[0]);
      if (p[0] <= median_err) best_j_at_q = std::min(best_j_at_q, p[1]);
    }
    const double hv = moea::hypervolume_2d(norm, {1.05, 1.05});
    table.add_row({fd.name, std::to_string(fd.configs), std::to_string(fd.points.size()),
                   util::TextTable::fmt(hv, 3), util::TextTable::fmt(best_f, 5),
                   best_j_at_q < 1e300 ? util::TextTable::fmt(best_j_at_q, 1) : "unreachable"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: the full cross-layer space achieves the largest hypervolume\n"
              "and the best reliability reach; single-layer removals shrink one or both.\n");
  return 0;
}
