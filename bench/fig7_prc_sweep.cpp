// Figure 7 reproduction: relative variation of average energy and average
// reconfiguration cost as the user-modulation parameter pRC sweeps from 0.0
// to 1.0, for five applications of different sizes.
//
// Normalization mirrors the figure: energy is shown relative to its value at
// pRC = 0 (it falls toward 1 gets lower as pRC grows); reconfiguration cost
// relative to its value at pRC = 1 (it rises toward 1 as pRC grows).
//
// Expected shape: maximum adaptation cost at pRC = 1 (which also gives the
// best energy); the cost curve need not fall strictly monotonically (only a
// few non-dominant points are responsible for the cheap transitions).

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf("Figure 7: relative avg energy / avg reconfiguration cost vs pRC\n\n");

  const std::vector<std::size_t> sizes{20, 40, 60, 80, 100};
  const std::vector<double> prcs{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

  for (std::size_t n : sizes) {
    const auto prepared = bench::prepare_app(n, /*tag=*/0xF167);
    const std::uint64_t seed = exp::derive_seed(0xF167u ^ 0xffu, n);

    std::vector<double> energy(prcs.size());
    std::vector<double> cost(prcs.size());
    for (std::size_t i = 0; i < prcs.size(); ++i) {
      const auto stats =
          bench::run_policy(prepared, prepared.flow.red, exp::PolicyKind::Ura, prcs[i], seed);
      energy[i] = stats.avg_energy;
      cost[i] = stats.avg_reconfig_cost;
    }

    const double e_ref = energy.front();                   // pRC = 0
    const double c_ref = std::max(cost.back(), 1e-12);     // pRC = 1

    util::TextTable table("application with " + std::to_string(n) + " tasks");
    std::vector<std::string> header{"pRC"}, row_e{"rel. avg energy"}, row_c{"rel. avg reconfig cost"};
    for (std::size_t i = 0; i < prcs.size(); ++i) {
      header.push_back(util::TextTable::fmt(prcs[i], 1));
      row_e.push_back(util::TextTable::fmt(e_ref > 0 ? energy[i] / e_ref : 0.0, 3));
      row_c.push_back(util::TextTable::fmt(cost[i] / c_ref, 3));
    }
    table.set_header(header);
    table.add_row(row_e);
    table.add_row(row_c);
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("paper shape: energy (green) decreases with pRC; reconfiguration cost (red)\n"
              "peaks at pRC = 1; the cost curve is not strictly monotone.\n");
  return 0;
}
