// Figure 7 reproduction: relative variation of average energy and average
// reconfiguration cost as the user-modulation parameter pRC sweeps from 0.0
// to 1.0, for five applications of different sizes.
//
// Normalization mirrors the figure: energy is shown relative to its value at
// pRC = 0 (it gets lower as pRC grows); reconfiguration cost relative to its
// value at pRC = 1 (it rises toward 1 as pRC grows). Each ratio is computed
// per replication (paired on the replication seed) and reported mean ± 95% CI
// over the exp::Runner's Monte-Carlo replications.
//
// Expected shape: maximum adaptation cost at pRC = 1 (which also gives the
// best energy); the cost curve need not fall strictly monotonically (only a
// few non-dominant points are responsible for the cheap transitions).

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf("Figure 7: relative avg energy / avg reconfiguration cost vs pRC\n\n");

  const std::vector<std::size_t> sizes = bench::sweep_task_counts({20, 40, 60, 80, 100});
  const std::vector<double> prcs{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

  // One Runner spans the whole (size × pRC) grid: every pRC cell of one app
  // shares that app's ReD cost matrix, built once, and all (cell, replication)
  // jobs fan out together.
  std::vector<bench::PreparedApp> apps;
  apps.reserve(sizes.size());
  exp::Runner runner(bench::runner_config());
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    apps.push_back(bench::prepare_app(sizes[s], /*tag=*/0xF167));
    const std::uint64_t seed = exp::derive_seed(0xF167u ^ 0xffu, sizes[s]);
    for (double prc : prcs) {
      runner.add_cell(bench::make_cell(apps[s], apps[s].flow.red, exp::PolicyKind::Ura, prc,
                                       seed,
                                       "n=" + std::to_string(sizes[s]) +
                                           " pRC=" + util::TextTable::fmt(prc, 1)));
    }
  }
  const auto results = runner.run();

  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const auto* row = &results[s * prcs.size()];
    const exp::CellResult& e_ref = row[0];             // pRC = 0
    const exp::CellResult& c_ref = row[prcs.size() - 1];  // pRC = 1

    util::TextTable table("application with " + std::to_string(sizes[s]) + " tasks");
    std::vector<std::string> header{"pRC"}, row_e{"rel. avg energy"},
        row_c{"rel. avg reconfig cost"};
    for (std::size_t i = 0; i < prcs.size(); ++i) {
      const auto rel_e = bench::paired_summary(
          row[i], e_ref, [](const rt::RuntimeStats& a, const rt::RuntimeStats& ref) {
            return ref.avg_energy > 0 ? a.avg_energy / ref.avg_energy : 0.0;
          });
      const auto rel_c = bench::paired_summary(
          row[i], c_ref, [](const rt::RuntimeStats& a, const rt::RuntimeStats& ref) {
            return a.avg_reconfig_cost / std::max(ref.avg_reconfig_cost, 1e-12);
          });
      header.push_back(util::TextTable::fmt(prcs[i], 1));
      row_e.push_back(bench::fmt_ci(rel_e, 3));
      row_c.push_back(bench::fmt_ci(rel_c, 3));
    }
    table.set_header(header);
    table.add_row(row_e);
    table.add_row(row_c);
    std::printf("%s\n", table.to_string().c_str());
  }

  bench::write_report("fig7_prc_sweep",
                      exp::grid_report("fig7_prc_sweep", runner.config(), results,
                                       &runner.metrics()));
  std::printf("paper shape: energy (green) decreases with pRC; reconfiguration cost (red)\n"
              "peaks at pRC = 1; the cost curve is not strictly monotone.\n");
  return 0;
}
