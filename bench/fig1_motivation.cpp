// Figure 1 reproduction (motivation case study): Pareto fronts of energy vs
// application error rate for three systems —
//   HW-Only : hardware-layer reliability techniques only,
//   CLR1    : coarse cross-layer configuration space,
//   CLR2    : full cross-layer configuration space —
// plus the average-energy bar chart: a fixed worst-case configuration
// (meeting the tightest error-rate requirement at all times) vs dynamic
// adaptation under a normally distributed error-rate requirement.
//
// All three systems share the same application, platform and QoS reference;
// only the CLR configuration space differs. The requirement distribution is
// derived from the union of the three fronts so every system faces the same
// environment. When a requirement is tighter than a system can achieve it
// runs at its most reliable point (and violates) — the worst-case cost of a
// coarse space.
//
// Expected shape (paper): dynamic Javg < fixed worst-case J, and
// Javg(CLR2) <= Javg(CLR1) <= Javg(HW-Only) — finer cross-layer granularity
// adapts better.

#include <algorithm>
#include <limits>

#include "bench_common.hpp"
#include "common/distributions.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

struct FrontPoint {
  double error_rate;
  double energy;
};

/// Pareto filter in (error_rate, energy), both minimized.
std::vector<FrontPoint> pareto_front(const std::vector<FrontPoint>& pts) {
  std::vector<FrontPoint> front;
  for (const auto& p : pts) {
    bool dominated = false;
    for (const auto& q : pts) {
      if ((q.error_rate <= p.error_rate && q.energy < p.energy) ||
          (q.error_rate < p.error_rate && q.energy <= p.energy)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(p);
  }
  std::sort(front.begin(), front.end(),
            [](const FrontPoint& a, const FrontPoint& b) { return a.error_rate < b.error_rate; });
  front.erase(std::unique(front.begin(), front.end(),
                          [](const FrontPoint& a, const FrontPoint& b) {
                            return a.error_rate == b.error_rate && a.energy == b.energy;
                          }),
              front.end());
  return front;
}

/// Cheapest point meeting the requirement; most reliable point when nothing
/// does (the system still runs, violating the requirement).
double energy_for_req(const std::vector<FrontPoint>& front, double req) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& p : front) {
    if (p.error_rate <= req) best = std::min(best, p.energy);
  }
  if (std::isfinite(best)) return best;
  double min_err = std::numeric_limits<double>::infinity();
  for (const auto& p : front) {
    if (p.error_rate < min_err) {
      min_err = p.error_rate;
      best = p.energy;
    }
  }
  return best;
}

}  // namespace

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf("Figure 1: motivation — dynamic CLR vs fixed configuration\n\n");

  constexpr std::size_t kTasks = 20;
  constexpr std::uint64_t kTag = 0xF161;
  const std::uint64_t app_seed = exp::derive_seed(kTag, kTasks);

  struct System {
    const char* name;
    rel::ClrGranularity granularity;
    std::vector<FrontPoint> raw;
    std::vector<FrontPoint> front;
  };
  std::vector<System> systems{{"HW-Only", rel::ClrGranularity::HwOnly, {}},
                              {"CLR1", rel::ClrGranularity::Coarse, {}},
                              {"CLR2", rel::ClrGranularity::Full, {}}};

  // One shared QoS reference corner so the three explorations target the
  // same feasible region (derived once on the richest space).
  dse::QosSpec spec;
  {
    const auto probe = exp::make_synthetic_app(kTasks, app_seed, rel::ClrGranularity::Full);
    util::Rng rng(exp::derive_seed(kTag ^ 0x5aecU, kTasks));
    spec = exp::derive_spec(probe->context(), dse::ObjectiveMode::EnergyQos, 96, 0.90, 0.05, rng);
  }

  for (auto& sys : systems) {
    const auto app = exp::make_synthetic_app(kTasks, app_seed, sys.granularity);
    dse::DseConfig cfg;
    cfg.base_ga.population = 96;
    cfg.base_ga.generations = 120;
    cfg.max_base_points = 48;
    dse::MappingProblem problem(app->context(), spec, dse::ObjectiveMode::EnergyQos);
    recfg::ReconfigModel reconfig(app->platform(), app->impls());
    dse::DesignTimeDse flow(problem, reconfig, cfg);
    util::Rng rng(exp::derive_seed(kTag ^ 0xD5Eu, kTasks));
    const auto db = flow.run_base(rng);

    for (const auto& p : db.points()) sys.raw.push_back({1.0 - p.func_rel, p.energy});
    std::printf("%s: explored %zu stored points (CLR space: %zu configs)\n", sys.name,
                sys.raw.size(), app->clr_space().size());
  }

  // The configuration spaces nest: HwOnly ⊂ CLR2 and CLR1 ⊂ CLR2, so every
  // operating point discovered while exploring the coarser spaces is a valid
  // CLR2 design point — merge them into CLR2's front (equivalent to giving
  // the larger space the search effort it deserves).
  systems[0].front = pareto_front(systems[0].raw);
  systems[1].front = pareto_front(systems[1].raw);
  {
    std::vector<FrontPoint> merged = systems[2].raw;
    merged.insert(merged.end(), systems[0].raw.begin(), systems[0].raw.end());
    merged.insert(merged.end(), systems[1].raw.begin(), systems[1].raw.end());
    systems[2].front = pareto_front(merged);
  }

  std::printf("\n");
  for (const auto& sys : systems) {
    std::printf("%s Pareto front (error rate %%, energy) — %zu points:\n", sys.name,
                sys.front.size());
    for (const auto& p : sys.front) {
      std::printf("  %.4f  %.2f\n", 100.0 * p.error_rate, p.energy);
    }
    std::printf("\n");
  }

  // Requirement distribution over the union of achievable error rates.
  std::vector<double> errs;
  for (const auto& sys : systems) {
    for (const auto& p : sys.front) errs.push_back(p.error_rate);
  }
  const double tight_req = util::percentile(errs, 0.05);
  const double loose_req = util::percentile(errs, 0.90);
  util::ClampedNormal req_dist(0.5 * (tight_req + loose_req), 0.25 * (loose_req - tight_req),
                               tight_req, loose_req);
  std::printf("error-rate requirement: normal over [%.3f%%, %.3f%%] (worst case %.3f%%)\n\n",
              100.0 * tight_req, 100.0 * loose_req, 100.0 * tight_req);

  util::TextTable bars("average energy: fixed worst-case vs dynamic adaptation");
  bars.set_header({"system", "#front points", "J fixed (worst-case)", "J avg (dynamic)",
                   "savings %"});
  util::Rng rng(exp::derive_seed(kTag ^ 0xBA5u, kTasks));
  for (const auto& sys : systems) {
    const double j_fixed = energy_for_req(sys.front, tight_req);
    double j_dyn = 0.0;
    const int samples = 20000;
    for (int s = 0; s < samples; ++s) {
      j_dyn += energy_for_req(sys.front, req_dist.sample(rng));
    }
    j_dyn /= samples;
    bars.add_row({sys.name, std::to_string(sys.front.size()), util::TextTable::fmt(j_fixed, 2),
                  util::TextTable::fmt(j_dyn, 2),
                  util::TextTable::fmt(bench::pct_reduction(j_fixed, j_dyn), 1)});
  }
  std::printf("%s", bars.to_string().c_str());
  std::printf(
      "\npaper shape: dynamic Javg is well below the fixed worst-case configuration, and the\n"
      "finer cross-layer spaces adapt to cheaper configurations: Javg(CLR2) <= Javg(CLR1)\n"
      "<= Javg(HW-Only).\n");
  return 0;
}
