// Fault sweep (ISSUE 3): availability under increasing transient soft-error
// pressure plus permanent PE wear-out, per run-time policy.
//
// One application, its ReD database, and the three policies (BaseD-style
// baseline, uRA, AuRA) are evaluated at transient rates {0, r, 4r, 16r} with
// r = CLR_FAULT_RATE (default 1e-4 upsets per PE per cycle) and a permanent
// wear-out MTBF of 5x the simulated horizon — most runs lose at least one PE,
// exercising the evacuation fallback chain. Every cell reports mean ± 95% CI
// over the replicated exp::Runner grid: availability, MTTR, unrecovered
// failures, downtime and safe-mode entries.
//
// Expected shape: availability degrades monotonically with the fault rate;
// the rate-0 column must match the fault-free benches exactly (same seeds,
// untouched QoS stream — the determinism contract of DESIGN.md §5.6).

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  const std::string trace_path = bench::trace_setup();
  const std::size_t n = bench::smoke() ? 10 : (bench::full_scale() ? 80 : 40);
  const double base_rate = bench::fault_rate();
  std::printf("Fault sweep: availability vs fault rate per policy (%zu-task app, r=%g)\n\n", n,
              base_rate);

  const auto prepared = bench::prepare_app(n, /*tag=*/0xFA17);
  const std::uint64_t seed = exp::derive_seed(0xFA17u ^ 0xffu, n);

  const std::vector<double> multipliers{0.0, 1.0, 4.0, 16.0};
  const std::vector<std::pair<exp::PolicyKind, const char*>> policies{
      {exp::PolicyKind::Baseline, "baseline"},
      {exp::PolicyKind::Ura, "ura"},
      {exp::PolicyKind::Aura, "aura"}};

  exp::Runner runner(bench::runner_config());
  for (const auto& [kind, name] : policies) {
    for (double mult : multipliers) {
      auto cell = bench::make_cell(prepared, prepared.flow.red, kind, 0.5, seed,
                                   std::string(name) + " rate=" +
                                       util::TextTable::fmt(mult, 0) + "x");
      cell.params.faults.transient_rate = base_rate * mult;
      // Wear-out pressure scales with the sweep too: the rate-0 column stays
      // the pristine fault-free reference.
      cell.params.faults.pe_mtbf = mult > 0.0 ? 5.0 * bench::sim_cycles() : 0.0;
      runner.add_cell(std::move(cell));
    }
  }
  const auto results = runner.run();

  util::TextTable table("availability vs fault rate (mean ±95% CI over " +
                        std::to_string(bench::replications()) + " replications)");
  table.set_header({"policy", "rate", "availability", "MTTR", "unrecovered", "downtime",
                    "safe-mode entries", "avg energy"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& res = results[i];
    const double mult = multipliers[i % multipliers.size()];
    const auto& s = res.stats;
    table.add_row({policies[i / multipliers.size()].second,
                   util::TextTable::fmt(base_rate * mult, 6), bench::fmt_ci(s.availability, 5),
                   bench::fmt_ci(s.mttr, 1), bench::fmt_ci(s.num_unrecovered_failures, 1),
                   bench::fmt_ci(s.downtime, 0), bench::fmt_ci(s.num_safe_mode_entries, 2),
                   bench::fmt_ci(s.avg_energy, 2)});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nexpected shape: availability falls monotonically with the injected rate; the\n"
              "rate-0 rows reproduce the fault-free runs bit-for-bit (identical seeds, fault\n"
              "stream never drawn). Cost-aware policies keep more headroom: fewer migrations\n"
              "mean the evacuation chain starts from cheaper states when PEs wear out.\n");
  bench::write_report("fault_sweep", exp::grid_report("fault_sweep", runner.config(), results,
                                                      &runner.metrics()));
  bench::trace_finish(trace_path);
  return 0;
}
