// Extension bench: lifetime-aware design-time DSE (the paper's suggested
// "MTTF added to R(Xi)" extension). Optimizes {Japp, -MTTF_system} under the
// QoS constraints and prints the energy/lifetime front, illustrating that
// power-hungry redundancy (partial TMR everywhere) ages the platform faster
// while cross-layer mixes buy reliability at a lower lifetime cost.

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace clr;
  bench::print_scale_note();
  std::printf("Extension: energy vs system-lifetime trade-off (EnergyLifetime mode)\n\n");

  constexpr std::size_t kTasks = 24;
  const auto app = exp::make_synthetic_app(kTasks, exp::derive_seed(0xAB17, kTasks));
  util::Rng rng(exp::derive_seed(0xAB17 ^ 1u, kTasks));
  const auto spec =
      exp::derive_spec(app->context(), dse::ObjectiveMode::EnergyLifetime, 64, 0.85, 0.10, rng);

  dse::MappingProblem problem(app->context(), spec, dse::ObjectiveMode::EnergyLifetime);
  recfg::ReconfigModel reconfig(app->platform(), app->impls());
  dse::DseConfig cfg = bench::bench_dse_config(kTasks);
  cfg.max_base_points = 24;
  dse::DesignTimeDse flow(problem, reconfig, cfg);
  const auto db = flow.run_base(rng);

  util::TextTable table("energy / lifetime Pareto points (QoS-feasible)");
  table.set_header({"Japp (energy)", "system MTTF", "Sapp", "Fapp"});
  sched::ListScheduler scheduler;
  // Sort by energy for readability.
  std::vector<std::pair<double, const dse::DesignPoint*>> order;
  for (const auto& p : db.points()) order.emplace_back(p.energy, &p);
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double mttf_lo = 1e300, mttf_hi = 0.0;
  for (const auto& [j, p] : order) {
    const auto res = scheduler.run(app->context(), p->config);
    table.add_row({util::TextTable::fmt(j, 1), util::TextTable::fmt(res.system_mttf, 0),
                   util::TextTable::fmt(p->makespan, 1), util::TextTable::fmt(p->func_rel, 5)});
    mttf_lo = std::min(mttf_lo, res.system_mttf);
    mttf_hi = std::max(mttf_hi, res.system_mttf);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nfront: %zu points; lifetime spans %.0f .. %.0f (%.1fx)\n", db.size(), mttf_lo,
              mttf_hi, mttf_hi / std::max(mttf_lo, 1e-12));
  std::printf("expected shape: a real trade-off — the lowest-energy mapping is not the\n"
              "longest-lived one, because reliability redundancy concentrates power on few PEs.\n");
  return 0;
}
